//! Checkpoint types, the logger that captures them, and replay validation.

use sampsim_util::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use sampsim_workload::{Cursor, Executor, Program};
use std::fmt;

/// Errors raised when attaching a pinball to a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PinballError {
    /// The pinball was captured from a different program (digest mismatch).
    DigestMismatch {
        /// Digest recorded in the pinball.
        expected: u64,
        /// Digest of the program supplied for replay.
        found: u64,
    },
}

impl fmt::Display for PinballError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinballError::DigestMismatch { expected, found } => write!(
                f,
                "pinball was captured from program {expected:#018x}, not {found:#018x}"
            ),
        }
    }
}

impl std::error::Error for PinballError {}

/// A checkpoint of a complete program execution.
#[derive(Debug, Clone, PartialEq)]
pub struct WholePinball {
    /// Program (benchmark) name, for reporting.
    pub program_name: String,
    /// Content digest of the program the pinball belongs to.
    pub program_digest: u64,
    /// Initial execution state.
    pub start: Cursor,
    /// Dynamic instruction count of the whole run.
    pub length: u64,
}

impl WholePinball {
    /// Captures a whole-execution checkpoint of `program`.
    pub fn capture(program: &Program) -> Self {
        Self {
            program_name: program.name().to_string(),
            program_digest: program.digest(),
            start: Cursor::start(program),
            length: program.total_insts(),
        }
    }

    /// Creates an executor positioned at the start of the checkpointed
    /// execution.
    ///
    /// # Errors
    ///
    /// Returns [`PinballError::DigestMismatch`] if `program` is not the
    /// program this pinball was captured from.
    pub fn attach<'p>(&self, program: &'p Program) -> Result<Executor<'p>, PinballError> {
        check_digest(self.program_digest, program)?;
        Ok(Executor::with_cursor(program, self.start.clone()))
    }
}

/// One chunk of checkpointed warmup: a cursor to resume from and how many
/// instructions to replay (uncounted) before measuring a region.
///
/// A regional pinball carries a chronological list of these. At full
/// (paper) scale the warmup is simply the instructions immediately
/// preceding the region; at reduced scale the pipeline selects preceding
/// slices *from the region's own cluster*, which reproduces the cache
/// residency the whole run accumulates for that phase (DESIGN.md scaling
/// policy).
#[derive(Debug, Clone, PartialEq)]
pub struct WarmupRecord {
    /// Execution state to resume from.
    pub start: Cursor,
    /// Number of warmup instructions to replay.
    pub insts: u64,
}

/// A checkpoint of one simulation point (a slice-aligned region).
#[derive(Debug, Clone, PartialEq)]
pub struct RegionalPinball {
    /// Program (benchmark) name, for reporting.
    pub program_name: String,
    /// Content digest of the program the pinball belongs to.
    pub program_digest: u64,
    /// Index of the slice this region covers.
    pub slice_index: u64,
    /// Execution state at the region start.
    pub start: Cursor,
    /// Region length in instructions (the slice size).
    pub length: u64,
    /// SimPoint weight: the fraction of whole-program execution this
    /// region represents.
    pub weight: f64,
    /// Cluster id the slice belongs to.
    pub cluster: u32,
    /// Warmup chunks, chronological (empty = no warmup data).
    pub warmup: Vec<WarmupRecord>,
}

impl RegionalPinball {
    /// Creates a regional pinball without warmup data.
    pub fn new(
        program: &Program,
        slice_index: u64,
        start: Cursor,
        length: u64,
        weight: f64,
        cluster: u32,
    ) -> Self {
        Self {
            program_name: program.name().to_string(),
            program_digest: program.digest(),
            slice_index,
            start,
            length,
            weight,
            cluster,
            warmup: Vec::new(),
        }
    }

    /// Attaches warmup chunks (builder-style; chunks must be
    /// chronological).
    pub fn with_warmup(mut self, warmup: Vec<WarmupRecord>) -> Self {
        self.warmup = warmup;
        self
    }

    /// Creates an executor positioned at the region start.
    ///
    /// # Errors
    ///
    /// Returns [`PinballError::DigestMismatch`] if `program` is not the
    /// program this pinball was captured from.
    pub fn attach<'p>(&self, program: &'p Program) -> Result<Executor<'p>, PinballError> {
        check_digest(self.program_digest, program)?;
        Ok(Executor::with_cursor(program, self.start.clone()))
    }

    /// Creates one executor per warmup chunk, in chronological order
    /// (empty when the pinball carries no warmup data).
    ///
    /// # Errors
    ///
    /// Returns [`PinballError::DigestMismatch`] on a program mismatch.
    pub fn warmup_executors<'p>(
        &self,
        program: &'p Program,
    ) -> Result<Vec<(Executor<'p>, u64)>, PinballError> {
        check_digest(self.program_digest, program)?;
        Ok(self
            .warmup
            .iter()
            .map(|w| (Executor::with_cursor(program, w.start.clone()), w.insts))
            .collect())
    }

    /// Total warmup instructions across all chunks.
    pub fn warmup_insts(&self) -> u64 {
        self.warmup.iter().map(|w| w.insts).sum()
    }
}

fn check_digest(expected: u64, program: &Program) -> Result<(), PinballError> {
    if expected != program.digest() {
        return Err(PinballError::DigestMismatch {
            expected,
            found: program.digest(),
        });
    }
    Ok(())
}

/// Captures checkpoints by walking a program's execution — the stand-in
/// for PinPlay's `logger` Pintool. (Like the real logger, this is the slow,
/// run-once part of the methodology.)
#[derive(Debug)]
pub struct Logger<'p> {
    program: &'p Program,
}

impl<'p> Logger<'p> {
    /// Creates a logger for `program`.
    pub fn new(program: &'p Program) -> Self {
        Self { program }
    }

    /// Executes the program start-to-end, capturing the cursor at every
    /// `slice_size` boundary. Element `i` is the state at instruction
    /// `i * slice_size`; the final partial slice's start is included.
    ///
    /// # Panics
    ///
    /// Panics if `slice_size` is zero.
    pub fn slice_starts(&self, slice_size: u64) -> Vec<Cursor> {
        assert!(slice_size > 0, "slice size must be positive");
        let mut exec = Executor::new(self.program);
        let mut starts = Vec::new();
        loop {
            let start = exec.cursor();
            let ran = exec.skip(slice_size);
            if ran == 0 {
                break;
            }
            starts.push(start);
            if ran < slice_size {
                break;
            }
        }
        starts
    }

    /// Captures a whole-execution pinball (no execution needed — the whole
    /// run starts at the initial state).
    pub fn whole(&self) -> WholePinball {
        WholePinball::capture(self.program)
    }
}

// ---------------------------------------------------------------------------
// Codec impls
// ---------------------------------------------------------------------------

impl Encode for WholePinball {
    fn encode(&self, enc: &mut Encoder) {
        self.program_name.encode(enc);
        enc.put_u64(self.program_digest);
        self.start.encode(enc);
        enc.put_u64(self.length);
    }
}

impl Decode for WholePinball {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            program_name: String::decode(dec)?,
            program_digest: dec.take_u64()?,
            start: Cursor::decode(dec)?,
            length: dec.take_u64()?,
        })
    }
}

impl Encode for WarmupRecord {
    fn encode(&self, enc: &mut Encoder) {
        self.start.encode(enc);
        enc.put_u64(self.insts);
    }
}

impl Decode for WarmupRecord {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            start: Cursor::decode(dec)?,
            insts: dec.take_u64()?,
        })
    }
}

impl Encode for RegionalPinball {
    fn encode(&self, enc: &mut Encoder) {
        self.program_name.encode(enc);
        enc.put_u64(self.program_digest);
        enc.put_u64(self.slice_index);
        self.start.encode(enc);
        enc.put_u64(self.length);
        enc.put_f64(self.weight);
        enc.put_u32(self.cluster);
        self.warmup.encode(enc);
    }
}

impl Decode for RegionalPinball {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            program_name: String::decode(dec)?,
            program_digest: dec.take_u64()?,
            slice_index: dec.take_u64()?,
            start: Cursor::decode(dec)?,
            length: dec.take_u64()?,
            weight: dec.take_f64()?,
            cluster: dec.take_u32()?,
            warmup: Vec::<WarmupRecord>::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};

    fn program(seed: u64) -> Program {
        WorkloadSpec::builder("pb-test", seed)
            .total_insts(30_000)
            .phase(PhaseSpec::balanced(1.0))
            .phase(PhaseSpec::compute_bound(1.0))
            .build()
            .build()
    }

    #[test]
    fn slice_starts_positions() {
        let p = program(1);
        let starts = Logger::new(&p).slice_starts(1_000);
        assert_eq!(starts.len() as u64, p.total_insts().div_ceil(1_000));
        for (i, c) in starts.iter().enumerate() {
            assert_eq!(c.retired, i as u64 * 1_000);
        }
    }

    #[test]
    fn regional_replay_matches_direct_execution() {
        let p = program(2);
        let starts = Logger::new(&p).slice_starts(1_000);
        let pb = RegionalPinball::new(&p, 5, starts[5].clone(), 1_000, 0.1, 0);
        // Reference: run from the beginning and skip to slice 5.
        let mut reference = Executor::new(&p);
        reference.skip(5_000);
        let mut replayed = pb.attach(&p).unwrap();
        for _ in 0..1_000 {
            assert_eq!(replayed.next_inst(), reference.next_inst());
        }
    }

    #[test]
    fn digest_mismatch_rejected() {
        let p1 = program(3);
        let p2 = program(4);
        let pb = WholePinball::capture(&p1);
        let err = pb.attach(&p2).unwrap_err();
        assert!(matches!(err, PinballError::DigestMismatch { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn warmup_attach() {
        let p = program(5);
        let starts = Logger::new(&p).slice_starts(1_000);
        let pb = RegionalPinball::new(&p, 4, starts[4].clone(), 1_000, 0.1, 2).with_warmup(vec![
            WarmupRecord {
                start: starts[1].clone(),
                insts: 1_000,
            },
            WarmupRecord {
                start: starts[2].clone(),
                insts: 2_000,
            },
        ]);
        assert_eq!(pb.warmup_insts(), 3_000);
        let chunks = pb.warmup_executors(&p).unwrap();
        assert_eq!(chunks.len(), 2);
        let (mut warm_exec, insts) = chunks.into_iter().nth(1).unwrap();
        assert_eq!(insts, 2_000);
        assert_eq!(warm_exec.retired(), 2_000);
        warm_exec.skip(insts);
        // The final chunk ends exactly at the region start.
        assert_eq!(warm_exec.cursor(), pb.start);
    }

    #[test]
    fn no_warmup_is_empty() {
        let p = program(6);
        let pb = RegionalPinball::new(&p, 0, Cursor::start(&p), 100, 1.0, 0);
        assert!(pb.warmup_executors(&p).unwrap().is_empty());
        assert_eq!(pb.warmup_insts(), 0);
    }

    #[test]
    fn codec_roundtrips() {
        let p = program(7);
        let starts = Logger::new(&p).slice_starts(2_000);
        let whole = WholePinball::capture(&p);
        let bytes = sampsim_util::codec::to_bytes(&whole);
        assert_eq!(
            sampsim_util::codec::from_bytes::<WholePinball>(&bytes).unwrap(),
            whole
        );
        let regional =
            RegionalPinball::new(&p, 1, starts[1].clone(), 2_000, 0.5, 3).with_warmup(vec![
                WarmupRecord {
                    start: starts[0].clone(),
                    insts: 2_000,
                },
            ]);
        let bytes = sampsim_util::codec::to_bytes(&regional);
        assert_eq!(
            sampsim_util::codec::from_bytes::<RegionalPinball>(&bytes).unwrap(),
            regional
        );
    }

    #[test]
    #[should_panic(expected = "slice size must be positive")]
    fn zero_slice_panics() {
        let p = program(8);
        Logger::new(&p).slice_starts(0);
    }
}

//! On-disk pinball storage.
//!
//! Files carry a magic/version header so stale or foreign files are
//! rejected with a clear error instead of garbage decodes.

use crate::pinball::{RegionalPinball, WholePinball};
use sampsim_util::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

const WHOLE_MAGIC: u32 = 0x5350_4257; // "SPBW"
const REGION_MAGIC: u32 = 0x5350_4252; // "SPBR"
const VERSION: u16 = 1;

/// Errors raised by pinball file I/O.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error.
    Io(io::Error),
    /// Malformed or mismatched file contents.
    Decode(DecodeError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "pinball i/o error: {e}"),
            StoreError::Decode(e) => write!(f, "pinball decode error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Decode(e) => Some(e),
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<DecodeError> for StoreError {
    fn from(e: DecodeError) -> Self {
        StoreError::Decode(e)
    }
}

/// Writes a whole pinball to `path`.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failure.
pub fn save_whole(path: &Path, pinball: &WholePinball) -> Result<(), StoreError> {
    let mut enc = Encoder::with_header(WHOLE_MAGIC, VERSION);
    pinball.encode(&mut enc);
    fs::write(path, enc.into_bytes())?;
    Ok(())
}

/// Reads a whole pinball from `path`.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failure and
/// [`StoreError::Decode`] on malformed contents.
pub fn load_whole(path: &Path) -> Result<WholePinball, StoreError> {
    let bytes = fs::read(path)?;
    let mut dec = Decoder::with_header(&bytes, WHOLE_MAGIC, VERSION)?;
    let pb = WholePinball::decode(&mut dec)?;
    if !dec.is_exhausted() {
        return Err(DecodeError::Invalid("trailing bytes").into());
    }
    Ok(pb)
}

/// Writes a set of regional pinballs (one benchmark's simulation points) to
/// `path`.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failure.
pub fn save_regions(path: &Path, regions: &[RegionalPinball]) -> Result<(), StoreError> {
    let mut enc = Encoder::with_header(REGION_MAGIC, VERSION);
    enc.put_u32(regions.len() as u32);
    for r in regions {
        r.encode(&mut enc);
    }
    fs::write(path, enc.into_bytes())?;
    Ok(())
}

/// Reads regional pinballs from `path`.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on filesystem failure and
/// [`StoreError::Decode`] on malformed contents.
pub fn load_regions(path: &Path) -> Result<Vec<RegionalPinball>, StoreError> {
    let bytes = fs::read(path)?;
    let mut dec = Decoder::with_header(&bytes, REGION_MAGIC, VERSION)?;
    let n = dec.take_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(RegionalPinball::decode(&mut dec)?);
    }
    if !dec.is_exhausted() {
        return Err(DecodeError::Invalid("trailing bytes").into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pinball::Logger;
    use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};
    use sampsim_workload::Program;

    fn program() -> Program {
        WorkloadSpec::builder("store-test", 1)
            .total_insts(10_000)
            .phase(PhaseSpec::balanced(1.0))
            .build()
            .build()
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sampsim-store-{name}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn whole_roundtrip() {
        let p = program();
        let pb = Logger::new(&p).whole();
        let path = tmpdir("whole").join("w.pb");
        save_whole(&path, &pb).unwrap();
        assert_eq!(load_whole(&path).unwrap(), pb);
    }

    #[test]
    fn regions_roundtrip() {
        let p = program();
        let starts = Logger::new(&p).slice_starts(1_000);
        let regions: Vec<RegionalPinball> = starts
            .iter()
            .take(3)
            .enumerate()
            .map(|(i, c)| RegionalPinball::new(&p, i as u64, c.clone(), 1_000, 0.3, i as u32))
            .collect();
        let path = tmpdir("regions").join("r.pb");
        save_regions(&path, &regions).unwrap();
        assert_eq!(load_regions(&path).unwrap(), regions);
    }

    #[test]
    fn wrong_magic_rejected() {
        let p = program();
        let pb = Logger::new(&p).whole();
        let dir = tmpdir("magic");
        let path = dir.join("w.pb");
        save_whole(&path, &pb).unwrap();
        // A whole-pinball file is not a region file.
        assert!(matches!(
            load_regions(&path),
            Err(StoreError::Decode(DecodeError::BadHeader { .. }))
        ));
    }

    #[test]
    fn truncated_file_rejected() {
        let p = program();
        let pb = Logger::new(&p).whole();
        let dir = tmpdir("trunc");
        let path = dir.join("w.pb");
        save_whole(&path, &pb).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(load_whole(&path), Err(StoreError::Decode(_))));
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_whole(Path::new("/nonexistent/sampsim.pb")),
            Err(StoreError::Io(_))
        ));
    }
}

#[cfg(test)]
mod store_extra_tests {
    use super::*;
    use crate::pinball::{Logger, WarmupRecord};
    use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};

    #[test]
    fn regions_with_warmup_chunks_roundtrip() {
        let p = WorkloadSpec::builder("store-warm", 3)
            .total_insts(12_000)
            .phase(PhaseSpec::balanced(1.0))
            .build()
            .build();
        let starts = Logger::new(&p).slice_starts(1_000);
        let regions = vec![
            RegionalPinball::new(&p, 5, starts[5].clone(), 1_000, 1.0, 0).with_warmup(vec![
                WarmupRecord {
                    start: starts[1].clone(),
                    insts: 1_000,
                },
                WarmupRecord {
                    start: starts[3].clone(),
                    insts: 2_000,
                },
            ]),
        ];
        let dir = std::env::temp_dir().join(format!("sampsim-store-warm-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warm.pb");
        save_regions(&path, &regions).unwrap();
        let back = load_regions(&path).unwrap();
        assert_eq!(back, regions);
        assert_eq!(back[0].warmup.len(), 2);
        assert_eq!(back[0].warmup_insts(), 3_000);
    }

    #[test]
    fn empty_region_file_roundtrips() {
        let dir = std::env::temp_dir().join(format!("sampsim-store-empty-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.pb");
        save_regions(&path, &[]).unwrap();
        assert!(load_regions(&path).unwrap().is_empty());
    }
}

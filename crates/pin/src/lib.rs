//! Dynamic instrumentation engine and Pintool suite.
//!
//! This crate plays the role of Pin (Luk et al., PLDI 2005) in the paper's
//! methodology: it drives a program's execution and dispatches every
//! retired instruction to one or more observation tools. The tools shipped
//! here mirror the Pintools the paper used:
//!
//! * [`tools::InsCount`] — dynamic instruction counter (`inscount0`),
//! * [`tools::LdStMix`] — instruction-mix profiler (`ldstmix`, Fig. 7),
//! * [`tools::BbvTool`] — per-slice basic-block vector collector (the
//!   front end of SimPoint/PinPoints),
//! * [`tools::CacheSim`] — functional cache-hierarchy bridge (`allcache`,
//!   Figs. 8 and 10),
//! * [`tools::TraceRecorder`] — bounded execution-trace logger used in
//!   replay-equivalence tests.
//!
//! Tools implement the [`Pintool`] trait and are driven by [`engine::run`]
//! (or the monomorphized [`engine::run_one`] for single-tool hot loops).
//!
//! # Example
//!
//! ```
//! use sampsim_pin::{engine, tools::{InsCount, LdStMix}};
//! use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};
//!
//! let program = WorkloadSpec::builder("demo", 1)
//!     .total_insts(10_000)
//!     .phase(PhaseSpec::balanced(1.0))
//!     .build()
//!     .build();
//! let mut exec = sampsim_workload::Executor::new(&program);
//! let mut count = InsCount::default();
//! let mut mix = LdStMix::default();
//! engine::run(&mut exec, u64::MAX, &mut [&mut count, &mut mix]);
//! assert_eq!(count.total(), program.total_insts());
//! assert_eq!(mix.counts().total(), program.total_insts());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod tools;

pub use engine::Pintool;

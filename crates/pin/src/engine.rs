//! The instrumentation engine: drives an executor and dispatches retired
//! instructions to tools.

use sampsim_workload::{Cursor, Executor, Retired};

/// An observation tool attached to a program's execution.
///
/// Tools receive every retired instruction. They must be passive: a tool
/// cannot alter the instruction stream (instrumentation, not emulation).
pub trait Pintool {
    /// Called for every retired instruction.
    fn on_inst(&mut self, inst: &Retired);

    /// Called when the driven run finishes (end of program or instruction
    /// limit). Default: no-op.
    fn on_run_end(&mut self) {}
}

/// Runs `exec` for up to `limit` instructions, feeding every retired
/// instruction to each tool in order. Returns the number of instructions
/// actually retired (less than `limit` only at program end).
///
/// # Example
///
/// See the crate-level example.
pub fn run(exec: &mut Executor<'_>, limit: u64, tools: &mut [&mut dyn Pintool]) -> u64 {
    let mut done = 0u64;
    while done < limit {
        match exec.next_inst() {
            Some(inst) => {
                for tool in tools.iter_mut() {
                    tool.on_inst(&inst);
                }
                done += 1;
            }
            None => break,
        }
    }
    for tool in tools.iter_mut() {
        tool.on_run_end();
    }
    done
}

/// The no-op tool: lets slice walks run untooled (e.g. a fast-forward
/// pass that only captures cursors).
impl Pintool for () {
    #[inline]
    fn on_inst(&mut self, _inst: &Retired) {}
}

/// An optional tool: dispatches when present, no-ops when `None`. Lets a
/// statically-typed tool stack carry a conditional member (the profiling
/// pass's cache simulator) without dynamic dispatch.
impl<T: Pintool> Pintool for Option<T> {
    #[inline]
    fn on_inst(&mut self, inst: &Retired) {
        if let Some(t) = self {
            t.on_inst(inst);
        }
    }
    fn on_run_end(&mut self) {
        if let Some(t) = self {
            t.on_run_end();
        }
    }
}

/// A pair of tools, dispatched in order — composes into arbitrary
/// statically-typed tool stacks.
impl<A: Pintool, B: Pintool> Pintool for (A, B) {
    #[inline]
    fn on_inst(&mut self, inst: &Retired) {
        self.0.on_inst(inst);
        self.1.on_inst(inst);
    }
    fn on_run_end(&mut self) {
        self.0.on_run_end();
        self.1.on_run_end();
    }
}

/// Three tools, dispatched in order (the profiling pass's
/// BBV + mix + optional cache stack).
impl<A: Pintool, B: Pintool, C: Pintool> Pintool for (A, B, C) {
    #[inline]
    fn on_inst(&mut self, inst: &Retired) {
        self.0.on_inst(inst);
        self.1.on_inst(inst);
        self.2.on_inst(inst);
    }
    fn on_run_end(&mut self) {
        self.0.on_run_end();
        self.1.on_run_end();
        self.2.on_run_end();
    }
}

/// Drives `exec` through up to `max_slices` slices of `slice_size`
/// instructions, feeding every retired instruction to `tool`. At the
/// start of each slice — before any of its instructions retire — the
/// slice-start [`Cursor`] is captured; after the slice's instructions
/// have been dispatched (and `on_run_end` has fired, matching a
/// per-slice [`run`] loop), `on_slice(tool, start, ran)` is invoked with
/// the tool handed back so per-slice state (a BBV accumulator, say) can
/// be harvested between slices.
///
/// This is the sharding primitive of the profiling pass: a whole-program
/// profile is `run_slices(start, slice, u64::MAX, …)`, and a parallel
/// shard is the same call with the shard's resume cursor and slice
/// budget. Because the executor checkpoints bit-exactly, the slices
/// observed by a shard are identical to the ones a whole-program walk
/// would have produced, whatever the shard boundaries.
///
/// Returns the total number of instructions retired; a final short slice
/// (program end) is reported to `on_slice` like any other, and iteration
/// stops there.
///
/// # Panics
///
/// Panics if `slice_size` is zero.
pub fn run_slices<T: Pintool>(
    exec: &mut Executor<'_>,
    slice_size: u64,
    max_slices: u64,
    tool: &mut T,
    mut on_slice: impl FnMut(&mut T, Cursor, u64),
) -> u64 {
    assert!(slice_size > 0, "slice size must be positive");
    let mut total = 0u64;
    let mut slices = 0u64;
    while slices < max_slices {
        let start = exec.cursor();
        let ran = run_one(exec, slice_size, tool);
        if ran == 0 {
            break;
        }
        on_slice(tool, start, ran);
        total += ran;
        slices += 1;
        if ran < slice_size {
            break;
        }
    }
    total
}

/// Monomorphized single-tool variant of [`run`] for hot loops (avoids the
/// dynamic dispatch per instruction).
pub fn run_one<T: Pintool>(exec: &mut Executor<'_>, limit: u64, tool: &mut T) -> u64 {
    let mut done = 0u64;
    while done < limit {
        match exec.next_inst() {
            Some(inst) => {
                tool.on_inst(&inst);
                done += 1;
            }
            None => break,
        }
    }
    tool.on_run_end();
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};
    use sampsim_workload::Program;

    struct Counter {
        n: u64,
        ended: bool,
    }

    impl Pintool for Counter {
        fn on_inst(&mut self, _inst: &Retired) {
            self.n += 1;
        }
        fn on_run_end(&mut self) {
            self.ended = true;
        }
    }

    fn program() -> Program {
        WorkloadSpec::builder("engine-test", 5)
            .total_insts(5_000)
            .phase(PhaseSpec::balanced(1.0))
            .build()
            .build()
    }

    #[test]
    fn run_respects_limit() {
        let p = program();
        let mut exec = Executor::new(&p);
        let mut c = Counter { n: 0, ended: false };
        let ran = run(&mut exec, 1000, &mut [&mut c]);
        assert_eq!(ran, 1000);
        assert_eq!(c.n, 1000);
        assert!(c.ended);
    }

    #[test]
    fn run_stops_at_program_end() {
        let p = program();
        let mut exec = Executor::new(&p);
        let mut c = Counter { n: 0, ended: false };
        let ran = run(&mut exec, u64::MAX, &mut [&mut c]);
        assert_eq!(ran, p.total_insts());
    }

    #[test]
    fn multiple_tools_see_same_stream() {
        let p = program();
        let mut exec = Executor::new(&p);
        let mut a = Counter { n: 0, ended: false };
        let mut b = Counter { n: 0, ended: false };
        run(&mut exec, 2_000, &mut [&mut a, &mut b]);
        assert_eq!(a.n, b.n);
    }

    #[test]
    fn run_slices_partitions_like_run() {
        let p = program();
        let mut whole = Executor::new(&p);
        let mut sliced = Executor::new(&p);
        let mut a = Counter { n: 0, ended: false };
        let mut b = Counter { n: 0, ended: false };
        run(&mut whole, u64::MAX, &mut [&mut a]);
        let mut boundaries = Vec::new();
        let total = run_slices(&mut sliced, 1_500, u64::MAX, &mut b, |_, start, ran| {
            boundaries.push((start.retired, ran));
        });
        assert_eq!(total, p.total_insts());
        assert_eq!(a.n, b.n);
        // 5000 insts at 1500/slice: 3 full slices + one 500-inst tail.
        assert_eq!(
            boundaries,
            vec![(0, 1_500), (1_500, 1_500), (3_000, 1_500), (4_500, 500)]
        );
    }

    #[test]
    fn run_slices_respects_budget_and_resumes() {
        let p = program();
        // A shard that owns slices [1, 3) must see exactly the cursors a
        // whole-program walk captures for those slices.
        let mut reference = Executor::new(&p);
        let mut want = Vec::new();
        run_slices(&mut reference, 1_000, u64::MAX, &mut (), |_, start, ran| {
            want.push((start, ran));
        });
        let mut warmup = Executor::new(&p);
        warmup.skip(1_000);
        let mut shard = Executor::with_cursor(&p, warmup.cursor());
        let mut got = Vec::new();
        let ran = run_slices(&mut shard, 1_000, 2, &mut (), |_, start, ran| {
            got.push((start, ran));
        });
        assert_eq!(ran, 2_000);
        assert_eq!(got.as_slice(), &want[1..3]);
    }

    #[test]
    fn tool_combinators_dispatch_in_order() {
        let p = program();
        let mut exec = Executor::new(&p);
        let mut stack = (
            Counter { n: 0, ended: false },
            (Counter { n: 0, ended: false }, None::<Counter>),
        );
        run_one(&mut exec, 700, &mut stack);
        assert_eq!(stack.0.n, 700);
        assert_eq!(stack.1 .0.n, 700);
        assert!(stack.0.ended && stack.1 .0.ended);
        let mut opt = Some(Counter { n: 0, ended: false });
        let mut exec = Executor::new(&p);
        run_one(&mut exec, 10, &mut opt);
        assert_eq!(opt.as_ref().unwrap().n, 10);
    }

    #[test]
    fn run_one_matches_run() {
        let p = program();
        let mut e1 = Executor::new(&p);
        let mut e2 = Executor::new(&p);
        let mut a = Counter { n: 0, ended: false };
        let mut b = Counter { n: 0, ended: false };
        assert_eq!(
            run(&mut e1, 1234, &mut [&mut a]),
            run_one(&mut e2, 1234, &mut b)
        );
        assert_eq!(a.n, b.n);
    }
}

//! The instrumentation engine: drives an executor and dispatches retired
//! instructions to tools.

use sampsim_workload::{Executor, Retired};

/// An observation tool attached to a program's execution.
///
/// Tools receive every retired instruction. They must be passive: a tool
/// cannot alter the instruction stream (instrumentation, not emulation).
pub trait Pintool {
    /// Called for every retired instruction.
    fn on_inst(&mut self, inst: &Retired);

    /// Called when the driven run finishes (end of program or instruction
    /// limit). Default: no-op.
    fn on_run_end(&mut self) {}
}

/// Runs `exec` for up to `limit` instructions, feeding every retired
/// instruction to each tool in order. Returns the number of instructions
/// actually retired (less than `limit` only at program end).
///
/// # Example
///
/// See the crate-level example.
pub fn run(exec: &mut Executor<'_>, limit: u64, tools: &mut [&mut dyn Pintool]) -> u64 {
    let mut done = 0u64;
    while done < limit {
        match exec.next_inst() {
            Some(inst) => {
                for tool in tools.iter_mut() {
                    tool.on_inst(&inst);
                }
                done += 1;
            }
            None => break,
        }
    }
    for tool in tools.iter_mut() {
        tool.on_run_end();
    }
    done
}

/// Monomorphized single-tool variant of [`run`] for hot loops (avoids the
/// dynamic dispatch per instruction).
pub fn run_one<T: Pintool>(exec: &mut Executor<'_>, limit: u64, tool: &mut T) -> u64 {
    let mut done = 0u64;
    while done < limit {
        match exec.next_inst() {
            Some(inst) => {
                tool.on_inst(&inst);
                done += 1;
            }
            None => break,
        }
    }
    tool.on_run_end();
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};
    use sampsim_workload::Program;

    struct Counter {
        n: u64,
        ended: bool,
    }

    impl Pintool for Counter {
        fn on_inst(&mut self, _inst: &Retired) {
            self.n += 1;
        }
        fn on_run_end(&mut self) {
            self.ended = true;
        }
    }

    fn program() -> Program {
        WorkloadSpec::builder("engine-test", 5)
            .total_insts(5_000)
            .phase(PhaseSpec::balanced(1.0))
            .build()
            .build()
    }

    #[test]
    fn run_respects_limit() {
        let p = program();
        let mut exec = Executor::new(&p);
        let mut c = Counter { n: 0, ended: false };
        let ran = run(&mut exec, 1000, &mut [&mut c]);
        assert_eq!(ran, 1000);
        assert_eq!(c.n, 1000);
        assert!(c.ended);
    }

    #[test]
    fn run_stops_at_program_end() {
        let p = program();
        let mut exec = Executor::new(&p);
        let mut c = Counter { n: 0, ended: false };
        let ran = run(&mut exec, u64::MAX, &mut [&mut c]);
        assert_eq!(ran, p.total_insts());
    }

    #[test]
    fn multiple_tools_see_same_stream() {
        let p = program();
        let mut exec = Executor::new(&p);
        let mut a = Counter { n: 0, ended: false };
        let mut b = Counter { n: 0, ended: false };
        run(&mut exec, 2_000, &mut [&mut a, &mut b]);
        assert_eq!(a.n, b.n);
    }

    #[test]
    fn run_one_matches_run() {
        let p = program();
        let mut e1 = Executor::new(&p);
        let mut e2 = Executor::new(&p);
        let mut a = Counter { n: 0, ended: false };
        let mut b = Counter { n: 0, ended: false };
        assert_eq!(
            run(&mut e1, 1234, &mut [&mut a]),
            run_one(&mut e2, 1234, &mut b)
        );
        assert_eq!(a.n, b.n);
    }
}

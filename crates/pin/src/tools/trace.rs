//! Bounded execution-trace recorder (the `logger` Pintool's observation
//! side), used mainly by replay-equivalence tests.

use crate::engine::Pintool;
use sampsim_workload::Retired;

/// Records up to `capacity` retired instructions verbatim.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    trace: Vec<Retired>,
    capacity: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// Creates a recorder holding at most `capacity` instructions; further
    /// instructions are counted but not stored.
    pub fn new(capacity: usize) -> Self {
        Self {
            trace: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
        }
    }

    /// The recorded instructions.
    pub fn trace(&self) -> &[Retired] {
        &self.trace
    }

    /// Instructions observed but not stored (capacity exceeded).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the recorder, returning the trace.
    pub fn into_trace(self) -> Vec<Retired> {
        self.trace
    }
}

impl Pintool for TraceRecorder {
    fn on_inst(&mut self, inst: &Retired) {
        if self.trace.len() < self.capacity {
            self.trace.push(*inst);
        } else {
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_workload::MemClass;

    #[test]
    fn caps_at_capacity() {
        let mut t = TraceRecorder::new(2);
        let r = Retired {
            block: 0,
            pc: 0,
            mem: MemClass::NoMem,
            addr: 0,
            is_branch: false,
            taken: false,
            dependent: false,
        };
        for _ in 0..5 {
            t.on_inst(&r);
        }
        assert_eq!(t.trace().len(), 2);
        assert_eq!(t.dropped(), 3);
    }
}

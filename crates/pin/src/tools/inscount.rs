//! `inscount0`: the dynamic instruction counter.

use crate::engine::Pintool;
use sampsim_workload::Retired;

/// Counts retired instructions and branch outcomes.
///
/// # Example
///
/// ```
/// use sampsim_pin::{engine, tools::InsCount};
/// use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};
///
/// let p = WorkloadSpec::builder("ic", 1)
///     .total_insts(1_000)
///     .phase(PhaseSpec::compute_bound(1.0))
///     .build()
///     .build();
/// let mut exec = sampsim_workload::Executor::new(&p);
/// let mut ic = InsCount::default();
/// engine::run_one(&mut exec, u64::MAX, &mut ic);
/// assert_eq!(ic.total(), p.total_insts());
/// assert!(ic.branches() > 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsCount {
    total: u64,
    branches: u64,
    taken: u64,
}

impl InsCount {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total instructions observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Conditional branches observed.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Branches that were taken.
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// Fraction of instructions that are branches (0 when empty).
    pub fn branch_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.branches as f64 / self.total as f64
        }
    }
}

impl Pintool for InsCount {
    #[inline]
    fn on_inst(&mut self, inst: &Retired) {
        self.total += 1;
        if inst.is_branch {
            self.branches += 1;
            self.taken += u64::from(inst.taken);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_workload::MemClass;

    fn retired(is_branch: bool, taken: bool) -> Retired {
        Retired {
            block: 0,
            pc: 0,
            mem: MemClass::NoMem,
            addr: 0,
            is_branch,
            taken,
            dependent: false,
        }
    }

    #[test]
    fn counts_branches_and_taken() {
        let mut ic = InsCount::new();
        ic.on_inst(&retired(false, false));
        ic.on_inst(&retired(true, true));
        ic.on_inst(&retired(true, false));
        assert_eq!(ic.total(), 3);
        assert_eq!(ic.branches(), 2);
        assert_eq!(ic.taken(), 1);
        assert!((ic.branch_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_fraction_is_zero() {
        assert_eq!(InsCount::new().branch_fraction(), 0.0);
    }
}

//! The Pintool suite (see the crate-level docs for the mapping onto the
//! paper's tools).

mod bbv;
mod cachesim;
mod inscount;
mod ldstmix;
mod trace;
mod tracefile;

pub use bbv::BbvTool;
pub use cachesim::CacheSim;
pub use inscount::InsCount;
pub use ldstmix::{LdStMix, MixCounts};
pub use trace::TraceRecorder;
pub use tracefile::{TraceReader, TraceWriter};

//! On-disk execution traces (the file-producing side of the paper's
//! `logger`/`replayer` Pintool pair).
//!
//! A trace file is a compact, versioned binary stream of retired
//! instructions. Unlike pinballs (which store a resumable *cursor*),
//! traces store the observed events themselves, so they can be consumed by
//! tools that never execute the program — including on machines without
//! the program definition.
//!
//! Format: header (magic `SPTR`, version, program digest, name) followed by
//! one fixed 21-byte little-endian record per instruction
//! (`block:u32 pc:u64 addr:u64 flags:u8`). Delta-encoding would be
//! smaller, but fixed records keep the reader trivially seekable; the
//! flags byte packs the memory class, branch bits and dependence.

use crate::engine::Pintool;
use sampsim_util::codec::{Decoder, Encoder};
use sampsim_workload::{MemClass, Retired};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: u32 = 0x5350_5452; // "SPTR"
const VERSION: u16 = 1;

fn pack_flags(inst: &Retired) -> u8 {
    let mut f = inst.mem.index() as u8; // 2 bits
    if inst.is_branch {
        f |= 1 << 2;
    }
    if inst.taken {
        f |= 1 << 3;
    }
    if inst.dependent {
        f |= 1 << 4;
    }
    f
}

fn unpack_flags(f: u8) -> (MemClass, bool, bool, bool) {
    let mem = MemClass::ALL[(f & 0b11) as usize];
    (mem, f & (1 << 2) != 0, f & (1 << 3) != 0, f & (1 << 4) != 0)
}

/// A Pintool that streams every retired instruction to a trace file.
#[derive(Debug)]
pub struct TraceWriter {
    out: BufWriter<File>,
    written: u64,
}

impl TraceWriter {
    /// Creates a trace file at `path` for a program identified by
    /// `program_digest` and `program_name`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be created.
    pub fn create(path: &Path, program_digest: u64, program_name: &str) -> io::Result<TraceWriter> {
        let mut enc = Encoder::with_header(MAGIC, VERSION);
        enc.put_u64(program_digest);
        enc.put_u32(program_name.len() as u32);
        enc.put_bytes(program_name.as_bytes());
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&enc.into_bytes())?;
        Ok(TraceWriter { out, written: 0 })
    }

    /// Instructions written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and closes the file.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the flush fails.
    pub fn finish(mut self) -> io::Result<u64> {
        self.out.flush()?;
        Ok(self.written)
    }
}

impl Pintool for TraceWriter {
    fn on_inst(&mut self, inst: &Retired) {
        let mut rec = [0u8; 21];
        rec[0..4].copy_from_slice(&inst.block.to_le_bytes());
        rec[4..12].copy_from_slice(&inst.pc.to_le_bytes());
        rec[12..20].copy_from_slice(&inst.addr.to_le_bytes());
        rec[20] = pack_flags(inst);
        // A stream write failing mid-trace leaves a truncated file; the
        // reader detects that. Destructors must not fail (C-DTOR-FAIL), so
        // errors surface at finish() via the flush.
        let _ = self.out.write_all(&rec);
        self.written += 1;
    }
}

/// Iterator over the records of a trace file.
#[derive(Debug)]
pub struct TraceReader {
    input: BufReader<File>,
    program_digest: u64,
    program_name: String,
}

impl TraceReader {
    /// Opens a trace file and validates its header.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic/version.
    pub fn open(path: &Path) -> io::Result<TraceReader> {
        let mut input = BufReader::new(File::open(path)?);
        let mut header = [0u8; 4 + 2 + 8 + 4];
        input.read_exact(&mut header)?;
        let mut dec = Decoder::with_header(&header, MAGIC, VERSION)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let program_digest = dec
            .take_u64()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let name_len = dec
            .take_u32()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            as usize;
        let mut name = vec![0u8; name_len];
        input.read_exact(&mut name)?;
        let program_name = String::from_utf8(name)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad trace name"))?;
        Ok(TraceReader {
            input,
            program_digest,
            program_name,
        })
    }

    /// Digest of the traced program.
    pub fn program_digest(&self) -> u64 {
        self.program_digest
    }

    /// Name of the traced program.
    pub fn program_name(&self) -> &str {
        &self.program_name
    }
}

impl Iterator for TraceReader {
    type Item = io::Result<Retired>;

    fn next(&mut self) -> Option<io::Result<Retired>> {
        let mut rec = [0u8; 21];
        match self.input.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return None,
            Err(e) => return Some(Err(e)),
        }
        let block = u32::from_le_bytes(rec[0..4].try_into().unwrap());
        let pc = u64::from_le_bytes(rec[4..12].try_into().unwrap());
        let addr = u64::from_le_bytes(rec[12..20].try_into().unwrap());
        let (mem, is_branch, taken, dependent) = unpack_flags(rec[20]);
        Some(Ok(Retired {
            block,
            pc,
            mem,
            addr,
            is_branch,
            taken,
            dependent,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};
    use sampsim_workload::Executor;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sampsim-trace-{name}-{}", std::process::id()))
    }

    #[test]
    fn trace_roundtrips_exactly() {
        let program = WorkloadSpec::builder("trace-test", 5)
            .total_insts(5_000)
            .phase(PhaseSpec::balanced(1.0))
            .build()
            .build();
        let path = tmpfile("roundtrip");
        let mut writer = TraceWriter::create(&path, program.digest(), program.name()).unwrap();
        let mut exec = Executor::new(&program);
        engine::run_one(&mut exec, u64::MAX, &mut writer);
        assert_eq!(writer.finish().unwrap(), program.total_insts());

        let reader = TraceReader::open(&path).unwrap();
        assert_eq!(reader.program_digest(), program.digest());
        assert_eq!(reader.program_name(), "trace-test");
        let replayed: Vec<Retired> = reader.map(|r| r.unwrap()).collect();
        let mut reference = Executor::new(&program);
        for (i, want) in replayed.iter().enumerate() {
            assert_eq!(reference.next_inst().as_ref(), Some(want), "record {i}");
        }
        assert!(reference.next_inst().is_none());
    }

    #[test]
    fn truncated_trace_ends_cleanly() {
        let program = WorkloadSpec::builder("trace-trunc", 6)
            .total_insts(1_000)
            .phase(PhaseSpec::compute_bound(1.0))
            .build()
            .build();
        let path = tmpfile("trunc");
        let mut writer = TraceWriter::create(&path, program.digest(), program.name()).unwrap();
        let mut exec = Executor::new(&program);
        engine::run_one(&mut exec, 100, &mut writer);
        writer.finish().unwrap();
        // Chop a partial record off the end.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let reader = TraceReader::open(&path).unwrap();
        let n = reader.filter_map(|r| r.ok()).count();
        assert_eq!(n, 99, "partial final record is dropped");
    }

    #[test]
    fn garbage_file_rejected() {
        let path = tmpfile("garbage");
        std::fs::write(&path, b"not a trace at all........").unwrap();
        assert!(TraceReader::open(&path).is_err());
    }
}

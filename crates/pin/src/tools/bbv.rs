//! Per-slice basic-block vector collection — the front end of SimPoint.
//!
//! A basic-block vector (BBV) counts, per basic block, how many
//! *instructions* were retired inside that block during a slice (block
//! entries weighted by block length, exactly as Sherwood et al. define it).
//! The pipeline harvests one vector per fixed-size slice.

use crate::engine::Pintool;
use sampsim_workload::Retired;

/// Collects the BBV of the instructions seen since the last harvest.
///
/// # Example
///
/// ```
/// use sampsim_pin::{engine, tools::BbvTool};
/// use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};
///
/// let p = WorkloadSpec::builder("bbv", 1)
///     .total_insts(5_000)
///     .phase(PhaseSpec::balanced(1.0))
///     .build()
///     .build();
/// let mut exec = sampsim_workload::Executor::new(&p);
/// let mut bbv = BbvTool::new(p.blocks().len());
/// engine::run_one(&mut exec, 1_000, &mut bbv);
/// let vector = bbv.harvest();
/// let total: u64 = vector.iter().map(|&(_, n)| u64::from(n)).sum();
/// assert_eq!(total, 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct BbvTool {
    counts: Vec<u32>,
    touched: Vec<u32>,
}

impl BbvTool {
    /// Creates a collector for a program with `num_blocks` basic blocks.
    pub fn new(num_blocks: usize) -> Self {
        Self {
            counts: vec![0; num_blocks],
            touched: Vec::with_capacity(64),
        }
    }

    /// Returns the counts accumulated since the last harvest as sparse
    /// `(block, instruction_count)` pairs sorted by block id, and resets
    /// the accumulator.
    pub fn harvest(&mut self) -> Vec<(u32, u32)> {
        self.touched.sort_unstable();
        let mut out = Vec::with_capacity(self.touched.len());
        for &b in &self.touched {
            let c = self.counts[b as usize];
            if c > 0 {
                out.push((b, c));
                self.counts[b as usize] = 0;
            }
        }
        self.touched.clear();
        out
    }

    /// Whether nothing has been recorded since the last harvest.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }
}

impl Pintool for BbvTool {
    #[inline]
    fn on_inst(&mut self, inst: &Retired) {
        let b = inst.block as usize;
        if self.counts[b] == 0 {
            self.touched.push(inst.block);
        }
        self.counts[b] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_workload::MemClass;

    fn retired(block: u32) -> Retired {
        Retired {
            block,
            pc: 0,
            mem: MemClass::NoMem,
            addr: 0,
            is_branch: false,
            taken: false,
            dependent: false,
        }
    }

    #[test]
    fn harvest_is_sparse_and_sorted() {
        let mut t = BbvTool::new(10);
        for b in [5u32, 2, 5, 5, 2, 9] {
            t.on_inst(&retired(b));
        }
        let v = t.harvest();
        assert_eq!(v, vec![(2, 2), (5, 3), (9, 1)]);
    }

    #[test]
    fn harvest_resets() {
        let mut t = BbvTool::new(4);
        t.on_inst(&retired(1));
        assert!(!t.is_empty());
        let _ = t.harvest();
        assert!(t.is_empty());
        assert_eq!(t.harvest(), vec![]);
        t.on_inst(&retired(1));
        assert_eq!(t.harvest(), vec![(1, 1)]);
    }
}

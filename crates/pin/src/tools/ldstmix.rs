//! `ldstmix`: the dynamic instruction-mix profiler (Fig. 7's metric).

use crate::engine::Pintool;
use sampsim_workload::{MemClass, Retired};

/// Instruction counts in the four `ldstmix` categories.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MixCounts {
    counts: [u64; 4],
}

impl MixCounts {
    /// Zeroed counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one instruction of class `mem`.
    #[inline]
    pub fn record(&mut self, mem: MemClass) {
        self.counts[mem.index()] += 1;
    }

    /// Count for one category.
    pub fn count(&self, mem: MemClass) -> u64 {
        self.counts[mem.index()]
    }

    /// Total instructions.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Percentage distribution in [`MemClass::ALL`] order
    /// (`NO_MEM, MEM_R, MEM_W, MEM_RW`); zeros when empty.
    pub fn distribution_pct(&self) -> [f64; 4] {
        let total = self.total();
        if total == 0 {
            return [0.0; 4];
        }
        let mut out = [0.0; 4];
        for (o, &c) in out.iter_mut().zip(&self.counts) {
            *o = 100.0 * c as f64 / total as f64;
        }
        out
    }

    /// Accumulates other counts.
    pub fn merge(&mut self, other: &MixCounts) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Largest absolute difference between two distributions, in
    /// percentage points — the paper's Fig. 7 error metric.
    pub fn max_distribution_error(&self, reference: &MixCounts) -> f64 {
        let a = self.distribution_pct();
        let b = reference.distribution_pct();
        a.iter()
            .zip(&b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }
}

/// The `ldstmix` Pintool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LdStMix {
    counts: MixCounts,
}

impl LdStMix {
    /// Creates a zeroed profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated counts.
    pub fn counts(&self) -> &MixCounts {
        &self.counts
    }

    /// Consumes the tool, returning the counts.
    pub fn into_counts(self) -> MixCounts {
        self.counts
    }
}

impl Pintool for LdStMix {
    #[inline]
    fn on_inst(&mut self, inst: &Retired) {
        self.counts.record(inst.mem);
    }
}

impl sampsim_util::codec::Encode for MixCounts {
    fn encode(&self, enc: &mut sampsim_util::codec::Encoder) {
        for &c in &self.counts {
            enc.put_u64(c);
        }
    }
}

impl sampsim_util::codec::Decode for MixCounts {
    fn decode(
        dec: &mut sampsim_util::codec::Decoder<'_>,
    ) -> Result<Self, sampsim_util::codec::DecodeError> {
        let mut counts = [0u64; 4];
        for c in &mut counts {
            *c = dec.take_u64()?;
        }
        Ok(Self { counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(counts: [u64; 4]) -> MixCounts {
        let mut m = MixCounts::new();
        for (class, &n) in MemClass::ALL.iter().zip(&counts) {
            for _ in 0..n {
                m.record(*class);
            }
        }
        m
    }

    #[test]
    fn distribution_sums_to_100() {
        let m = mk([50, 30, 15, 5]);
        let d = m.distribution_pct();
        assert!((d.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert_eq!(d[0], 50.0);
        assert_eq!(d[3], 5.0);
    }

    #[test]
    fn empty_distribution_is_zero() {
        assert_eq!(MixCounts::new().distribution_pct(), [0.0; 4]);
    }

    #[test]
    fn merge_adds() {
        let mut a = mk([1, 2, 3, 4]);
        a.merge(&mk([10, 20, 30, 40]));
        assert_eq!(a.count(MemClass::NoMem), 11);
        assert_eq!(a.count(MemClass::ReadWrite), 44);
        assert_eq!(a.total(), 110);
    }

    #[test]
    fn max_error_metric() {
        let a = mk([50, 30, 15, 5]);
        let b = mk([48, 32, 15, 5]);
        assert!((a.max_distribution_error(&b) - 2.0).abs() < 1e-9);
        assert_eq!(a.max_distribution_error(&a), 0.0);
    }
}

//! `allcache` bridge: feeds the retired stream into a cache hierarchy.

use crate::engine::Pintool;
use sampsim_cache::{Hierarchy, HierarchyConfig, HierarchyStats};
use sampsim_workload::Retired;

/// A Pintool that drives a [`Hierarchy`] with every instruction fetch and
/// data access of the observed stream.
///
/// A `MEM_RW` instruction performs a read followed by a write to the same
/// address (the x86 `movs` idiom the paper cites), i.e. two L1D accesses.
///
/// # Example
///
/// ```
/// use sampsim_cache::configs;
/// use sampsim_pin::{engine, tools::CacheSim};
/// use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};
///
/// let p = WorkloadSpec::builder("cs", 1)
///     .total_insts(10_000)
///     .phase(PhaseSpec::memory_bound(1.0))
///     .build()
///     .build();
/// let mut exec = sampsim_workload::Executor::new(&p);
/// let mut cs = CacheSim::new(configs::allcache_table1());
/// engine::run_one(&mut exec, u64::MAX, &mut cs);
/// let stats = cs.stats();
/// assert!(stats.l1d.accesses > 0);
/// assert_eq!(stats.l1i.accesses, p.total_insts());
/// ```
#[derive(Debug, Clone)]
pub struct CacheSim {
    hierarchy: Hierarchy,
}

impl CacheSim {
    /// Creates a cold cache simulator.
    pub fn new(config: HierarchyConfig) -> Self {
        Self {
            hierarchy: Hierarchy::new(config),
        }
    }

    /// Wraps an existing (possibly pre-warmed) hierarchy.
    pub fn from_hierarchy(hierarchy: Hierarchy) -> Self {
        Self { hierarchy }
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> HierarchyStats {
        self.hierarchy.stats()
    }

    /// Access to the underlying hierarchy (e.g. to toggle warmup mode or
    /// reset statistics between regions).
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.hierarchy
    }

    /// Shared access to the underlying hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Consumes the tool, returning the hierarchy.
    pub fn into_hierarchy(self) -> Hierarchy {
        self.hierarchy
    }
}

impl Pintool for CacheSim {
    #[inline]
    fn on_inst(&mut self, inst: &Retired) {
        self.hierarchy.fetch(inst.pc);
        if inst.mem.reads() {
            self.hierarchy.access_data(inst.addr, false);
        }
        if inst.mem.writes() {
            self.hierarchy.access_data(inst.addr, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_cache::configs;
    use sampsim_workload::MemClass;

    fn retired(mem: MemClass, addr: u64) -> Retired {
        Retired {
            block: 0,
            pc: 0x40_0000,
            mem,
            addr,
            is_branch: false,
            taken: false,
            dependent: false,
        }
    }

    #[test]
    fn rw_counts_two_data_accesses() {
        let mut cs = CacheSim::new(configs::allcache_table1());
        cs.on_inst(&retired(MemClass::ReadWrite, 0x1000));
        let s = cs.stats();
        assert_eq!(s.l1d.accesses, 2);
        assert_eq!(s.l1d.misses, 1, "write hits the line the read filled");
        assert_eq!(s.l1i.accesses, 1);
    }

    #[test]
    fn nomem_only_fetches() {
        let mut cs = CacheSim::new(configs::allcache_table1());
        cs.on_inst(&retired(MemClass::NoMem, 0));
        let s = cs.stats();
        assert_eq!(s.l1d.accesses, 0);
        assert_eq!(s.l1i.accesses, 1);
    }

    #[test]
    fn warmup_toggle_via_hierarchy() {
        let mut cs = CacheSim::new(configs::allcache_table1());
        cs.hierarchy_mut().set_warmup(true);
        cs.on_inst(&retired(MemClass::Read, 0x2000));
        cs.hierarchy_mut().set_warmup(false);
        assert_eq!(cs.stats().l1d.accesses, 0);
        cs.on_inst(&retired(MemClass::Read, 0x2000));
        let s = cs.stats();
        assert_eq!(s.l1d.accesses, 1);
        assert_eq!(s.l1d.misses, 0);
    }
}

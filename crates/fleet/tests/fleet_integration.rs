//! End-to-end tests for the fleet layer: placement determinism, reply
//! byte-identity through the router across cold/warm/coalesced paths,
//! peer warming + rebalance, typed degraded replies for dead shards,
//! and the streamed suite batch op.
//!
//! Every test binds ephemeral loopback ports and uses the tiny scaled
//! `620.omnetpp_s` configuration so a pipeline execution costs fractions
//! of a second.

use sampsim_core::stage_cache::NoCache;
use sampsim_exec::Jobs;
use sampsim_fleet::ring::Ring;
use sampsim_fleet::router::{Router, RouterConfig};
use sampsim_fleet::{Fleet, FleetConfig};
use sampsim_serve::service::{self, RunRequest};
use sampsim_serve::{client, protocol, ServeConfig, Server};
use sampsim_util::json;

fn tiny_request(maxk: usize) -> RunRequest {
    RunRequest {
        bench: "omnetpp_s".into(),
        scale: 0.002,
        slice: None,
        maxk: Some(maxk),
        strategy: None,
        kmeans: None,
    }
}

fn tiny_request_line(maxk: usize) -> String {
    protocol::run_request_line("omnetpp_s", 0.002, None, Some(maxk), None, None)
}

/// The ground truth: exactly what `sampsim run` prints on stdout.
fn reference_document(maxk: usize) -> String {
    service::run_document(&tiny_request(maxk), sampsim_exec::SERIAL, &NoCache).unwrap()
}

/// A fleet config sized for tests: small pools, ephemeral everything.
fn test_fleet(shards: usize) -> FleetConfig {
    FleetConfig {
        shard_workers: Jobs::new(2).unwrap(),
        router_workers: Jobs::new(4).unwrap(),
        ..FleetConfig::ephemeral(shards)
    }
}

/// Tentpole contract: N concurrent identical requests through a 2-shard
/// fleet all receive bytes identical to `sampsim run` stdout, the fleet
/// executed the pipeline exactly once (cold + coalesced + warm paths all
/// converge), and the router warmed the sibling shard.
#[test]
fn fleet_replies_are_byte_identical_across_cold_warm_coalesced_paths() {
    const CLIENTS: usize = 4;
    let reference = reference_document(6);
    let fleet = Fleet::spawn(&test_fleet(2)).unwrap();
    let addr = fleet.addr().to_string();

    // Cold + coalesced: concurrent identical requests.
    let replies: Vec<String> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|_| s.spawn(|| client::request_line(&addr, &tiny_request_line(6)).unwrap()))
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    for reply in &replies {
        assert_eq!(reply, &reference, "routed bytes != `sampsim run` stdout");
    }
    // Warm: one more sequential request is a pure cache hit.
    assert_eq!(
        client::request_line(&addr, &tiny_request_line(6)).unwrap(),
        reference
    );

    // Fleet-wide stats aggregate all shard counters and carry the
    // fleet-level shape.
    let stats_line = client::request_line(&addr, "{\"op\":\"stats\"}").unwrap();
    let v = json::parse(&stats_line).unwrap();
    assert_eq!(
        v.get("shards").unwrap().as_f64().unwrap(),
        2.0,
        "{stats_line}"
    );
    assert_eq!(v.get("unreachable").unwrap().as_f64().unwrap(), 0.0);
    let aggregated = sampsim_serve::Stats::from_json(&stats_line).unwrap();
    assert_eq!(aggregated.executions, 1, "{stats_line}");

    assert_eq!(
        client::request_line(&addr, "{\"op\":\"shutdown\"}").unwrap(),
        "{\"ok\":\"shutdown\"}"
    );
    let report = fleet.wait().unwrap();
    let totals = report.totals();
    assert_eq!(totals.executions, 1, "exactly one pipeline run: {totals:?}");
    assert_eq!(
        totals.coalesced + totals.mem_hits,
        CLIENTS as u64,
        "every non-leader coalesced or hit: {totals:?}"
    );
    assert!(totals.peer_warms >= 1, "sibling was warmed: {totals:?}");
    assert!(report.router.peer_warms_sent >= 1, "{:?}", report.router);
    assert_eq!(report.router.degraded, 0);
}

/// Placement is a pure function of (key, slot count): two fleets over
/// the same shard count place the same configs on the same slots, pinned
/// by each slot's execution counter.
#[test]
fn shard_placement_is_deterministic_across_fleets() {
    let maxks = [3usize, 4, 5, 7, 8];
    let per_slot = |report: &sampsim_fleet::FleetReport| -> Vec<u64> {
        report.shards.iter().map(|s| s.executions).collect()
    };
    let run_fleet = || {
        let fleet = Fleet::spawn(&test_fleet(2)).unwrap();
        let addr = fleet.addr().to_string();
        for &maxk in &maxks {
            let reply = client::request_line(&addr, &tiny_request_line(maxk)).unwrap();
            assert!(!protocol::is_error_reply(&reply), "{reply}");
        }
        client::request_line(&addr, "{\"op\":\"shutdown\"}").unwrap();
        fleet.wait().unwrap()
    };
    let first = run_fleet();
    let second = run_fleet();
    assert_eq!(per_slot(&first), per_slot(&second), "placement moved");
    assert_eq!(per_slot(&first).iter().sum::<u64>(), maxks.len() as u64);
    // And the placement matches the ring applied to the routing keys.
    let ring = Ring::new(2);
    let mut expected = vec![0u64; 2];
    for &maxk in &maxks {
        let key = service::route_key(&tiny_request(maxk)).unwrap();
        expected[ring.route(key)] += 1;
    }
    assert_eq!(per_slot(&first), expected);
}

/// Failure semantics: killing one shard turns its keys into typed
/// `degraded` replies — never hangs or dropped connections — while the
/// surviving shard's keys keep serving byte-identical documents.
#[test]
fn dead_shard_yields_typed_degraded_replies_and_the_fleet_survives() {
    let fleet = Fleet::spawn(&test_fleet(2)).unwrap();
    let addr = fleet.addr().to_string();
    let ring = Ring::new(2);

    // Find one config per slot (deterministically, via the real keys).
    let slot_config = |slot: usize| -> usize {
        (3..64)
            .find(|&maxk| ring.route(service::route_key(&tiny_request(maxk)).unwrap()) == slot)
            .expect("both slots own some config")
    };
    let dead_slot = 0;
    let dead_maxk = slot_config(dead_slot);
    let live_maxk = slot_config(1 - dead_slot);

    // Kill slot 0's daemon directly (not through the router).
    client::request_line(
        fleet.shard_addrs()[dead_slot].as_str(),
        "{\"op\":\"shutdown\"}",
    )
    .unwrap();

    // Keys owned by the dead slot: typed degraded reply naming it.
    let degraded = client::request_line(&addr, &tiny_request_line(dead_maxk)).unwrap();
    assert!(degraded.contains("\"code\":\"degraded\""), "{degraded}");
    assert!(
        degraded.contains(&format!("shard {dead_slot}")),
        "{degraded}"
    );

    // Keys owned by the survivor: still byte-identical.
    assert_eq!(
        client::request_line(&addr, &tiny_request_line(live_maxk)).unwrap(),
        reference_document(live_maxk)
    );

    // Fleet stats report the dead shard instead of failing.
    let stats_line = client::request_line(&addr, "{\"op\":\"stats\"}").unwrap();
    let v = json::parse(&stats_line).unwrap();
    assert_eq!(v.get("unreachable").unwrap().as_f64().unwrap(), 1.0);

    client::request_line(&addr, "{\"op\":\"shutdown\"}").unwrap();
    let report = fleet.wait().unwrap();
    assert!(report.router.degraded >= 1, "{:?}", report.router);
}

/// The rebalance story end to end: serve a key through a 2-shard fleet
/// (which peer-warms the key's second-preference shard), kill the owner,
/// put a new router over the survivor — and the same request is served
/// from the survivor's cache with ZERO new pipeline executions.
#[test]
fn peer_warming_makes_rebalance_hit_the_sibling_cache() {
    let serve_config = |_: usize| ServeConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: None,
        workers: Jobs::new(2).unwrap(),
        ..ServeConfig::default()
    };
    let shard_a = Server::bind(serve_config(0)).unwrap().spawn();
    let shard_b = Server::bind(serve_config(1)).unwrap().spawn();
    let backends = vec![shard_a.addr().to_string(), shard_b.addr().to_string()];

    // A config owned by slot 0 under a 2-slot ring.
    let ring = Ring::new(2);
    let maxk = (3..64)
        .find(|&maxk| ring.route(service::route_key(&tiny_request(maxk)).unwrap()) == 0)
        .unwrap();
    let key = service::route_key(&tiny_request(maxk)).unwrap();
    assert_eq!(ring.preference(key), vec![0, 1]);
    let reference = reference_document(maxk);

    // Serve it through a router over [A, B]: A executes, B gets warmed.
    let router = Router::bind(RouterConfig::over("127.0.0.1:0", backends.clone()))
        .unwrap()
        .spawn();
    let router_addr = router.addr().to_string();
    assert_eq!(
        client::request_line(&router_addr, &tiny_request_line(maxk)).unwrap(),
        reference
    );
    // Kill the owner shard directly (the router's own shutdown op would
    // fan to both shards; the survivor must stay up for the rebalance).
    client::request_line(&backends[0], "{\"op\":\"shutdown\"}").unwrap();
    let stats_a = shard_a.wait().unwrap();
    assert_eq!(stats_a.executions, 1, "A executed the cold run");

    // Rebalance: a new router over the SURVIVOR only. The key's new
    // owner is its old second preference — exactly the shard peer
    // warming filled.
    let rebalanced = Router::bind(RouterConfig::over("127.0.0.1:0", vec![backends[1].clone()]))
        .unwrap()
        .spawn();
    let rebalanced_addr = rebalanced.addr().to_string();
    assert_eq!(
        client::request_line(&rebalanced_addr, &tiny_request_line(maxk)).unwrap(),
        reference,
        "rebalanced reply must still be byte-identical"
    );
    // Tear down: the rebalanced router's shutdown fans to B; the first
    // router's fan-out then hits two dead shards, which is fine.
    client::request_line(&rebalanced_addr, "{\"op\":\"shutdown\"}").unwrap();
    rebalanced.wait().unwrap();
    client::request_line(&router_addr, "{\"op\":\"shutdown\"}").unwrap();
    router.wait().unwrap();
    let stats_b = shard_b.wait().unwrap();
    assert_eq!(
        stats_b.executions, 0,
        "the warmed sibling must answer from cache: {stats_b:?}"
    );
    assert_eq!(stats_b.peer_warms, 1, "{stats_b:?}");
    assert_eq!(stats_b.mem_hits, 1, "{stats_b:?}");
}

/// The batch op: items stream back in request order, each carrying the
/// verbatim per-benchmark reply (documents for valid benchmarks, typed
/// errors for invalid ones), terminated by an accurate summary.
#[test]
fn suite_requests_stream_ordered_items_and_a_summary() {
    let reference = reference_document(6);
    let fleet = Fleet::spawn(&test_fleet(2)).unwrap();
    let addr = fleet.addr().to_string();

    let template = RunRequest {
        bench: String::new(),
        ..tiny_request(6)
    };
    let line = protocol::suite_request_line(&["620.omnetpp_s", "nope"], &template);
    let mut items = Vec::new();
    let summary =
        client::request_stream(&addr, &line, |item| items.push(item.to_string())).unwrap();

    assert_eq!(items.len(), 2, "{items:?}");
    let first = json::parse(&items[0]).unwrap();
    assert_eq!(first.get("item").unwrap().as_f64().unwrap(), 0.0);
    assert_eq!(
        first.get("bench").unwrap().as_str().unwrap(),
        "620.omnetpp_s"
    );
    // The embedded reply is the exact run document.
    let reply_start = items[0].find("\"reply\":").unwrap() + "\"reply\":".len();
    assert_eq!(&items[0][reply_start..items[0].len() - 1], reference);

    let second = json::parse(&items[1]).unwrap();
    assert_eq!(second.get("item").unwrap().as_f64().unwrap(), 1.0);
    assert_eq!(
        second
            .get("reply")
            .unwrap()
            .get("error")
            .unwrap()
            .get("code")
            .unwrap()
            .as_str()
            .unwrap(),
        "unknown-bench"
    );

    let v = json::parse(&summary).unwrap();
    assert_eq!(v.get("items").unwrap().as_f64().unwrap(), 2.0, "{summary}");
    assert_eq!(v.get("errors").unwrap().as_f64().unwrap(), 1.0);

    client::request_line(&addr, "{\"op\":\"shutdown\"}").unwrap();
    fleet.wait().unwrap();
}

/// A single-shard fleet still honors the whole protocol surface through
/// the router (ping via the retrying client, peer warming auto-disabled).
#[test]
fn single_shard_fleet_serves_the_full_protocol() {
    let fleet = Fleet::spawn(&test_fleet(1)).unwrap();
    let addr = fleet.addr().to_string();
    let policy = client::RetryPolicy {
        attempts: 4,
        base_ms: 5,
        max_ms: 50,
        seed: 7,
    };
    let got = client::request_line_with_retry(&addr, "{\"op\":\"ping\"}", &policy).unwrap();
    assert_eq!(got.reply, "{\"ok\":\"pong\"}");
    assert_eq!(got.attempts, 1);
    assert_eq!(
        client::request_line(&addr, &tiny_request_line(6)).unwrap(),
        reference_document(6)
    );
    client::request_line(&addr, "{\"op\":\"shutdown\"}").unwrap();
    let report = fleet.wait().unwrap();
    // With one shard there is no sibling to warm.
    assert_eq!(report.router.peer_warms_sent, 0);
    assert_eq!(report.totals().peer_warms, 0);
}

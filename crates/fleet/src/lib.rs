//! `sampsim-fleet` — sharded multi-instance serving on top of
//! `sampsim-serve`.
//!
//! One daemon amortizes profiling across requests; a *fleet* amortizes
//! it across machines-worth of workers while keeping the single-node
//! contract intact. The pieces:
//!
//! - [`ring`] — rendezvous (highest-random-weight) hashing: a pure
//!   deterministic map from content-addressed keys to shard slots, with
//!   per-key preference lists so a shard loss moves each orphaned key to
//!   exactly the sibling that peer warming pre-filled.
//! - [`router`] — the front-end. Speaks the same line protocol as a
//!   single daemon (clients cannot tell the difference), shards `run`
//!   requests by `response_key`, relays shard replies byte-for-byte,
//!   warms next-preference siblings over `peer-put`, aggregates
//!   fleet-wide `stats`, fans `suite` batch sweeps across the pool, and
//!   answers for dead shards with typed `degraded` replies.
//! - [`loadgen`] — a std-only load generator: spawns an ephemeral
//!   in-process fleet, drives concurrent cold/warm traffic through real
//!   sockets, and emits a schema-checked `sampsim-serve-bench/v1`
//!   report (p50/p99 latency, throughput, fleet counters).
//!
//! # Determinism contract
//!
//! Placement is a pure function of `(response_key, shard_count)` and
//! replies are produced by the shards' single rendering path, so a fleet
//! answer is byte-identical to `sampsim run` stdout — cold, warm,
//! coalesced, or after a rebalance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;
pub mod ring;
pub mod router;

use router::{Router, RouterConfig, RouterHandle, RouterStats};
use sampsim_exec::Jobs;
use sampsim_serve::{ServeConfig, Server, ServerHandle, Stats};
use std::net::SocketAddr;
use std::path::PathBuf;

/// Configuration for an in-process fleet: N shard daemons plus the
/// router in front of them.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Router listen address (`host:port`; port 0 = ephemeral). Shards
    /// always bind ephemeral loopback ports.
    pub addr: String,
    /// Number of backend shards (>= 1).
    pub shards: usize,
    /// Worker-pool size per shard.
    pub shard_workers: Jobs,
    /// Router worker threads.
    pub router_workers: Jobs,
    /// Admission-queue depth for the router and each shard.
    pub queue_depth: usize,
    /// In-memory cache entries per shard.
    pub mem_entries: usize,
    /// Disk-tier root; shard `i` uses `<root>/shard-<i>` (`None` =
    /// memory tiers only).
    pub cache_dir: Option<PathBuf>,
}

impl FleetConfig {
    /// An ephemeral loopback fleet of `shards` shards.
    pub fn ephemeral(shards: usize) -> Self {
        FleetConfig {
            addr: "127.0.0.1:0".into(),
            shards,
            shard_workers: Jobs::Auto,
            router_workers: Jobs::Auto,
            queue_depth: sampsim_serve::DEFAULT_QUEUE_DEPTH,
            mem_entries: sampsim_serve::DEFAULT_MEM_ENTRIES,
            cache_dir: None,
        }
    }
}

/// Final counters of a fleet run: the router's and every shard's.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Router-level counters.
    pub router: RouterStats,
    /// Per-shard daemon counters, in slot order.
    pub shards: Vec<Stats>,
}

impl FleetReport {
    /// The fleet-wide sum of all shard counters.
    pub fn totals(&self) -> Stats {
        let mut totals = Stats::default();
        for shard in &self.shards {
            totals.merge(shard);
        }
        totals
    }
}

/// A running in-process fleet: shard daemons plus the router, each on
/// its own threads.
pub struct Fleet {
    router: RouterHandle,
    shards: Vec<ServerHandle>,
    shard_addrs: Vec<String>,
}

impl Fleet {
    /// Binds and spawns the whole topology: `shards` daemons on
    /// ephemeral ports, then the router over them. Returns once every
    /// socket is bound and serving.
    ///
    /// # Errors
    ///
    /// Returns the first bind/spawn I/O error (already-spawned shards
    /// are shut down best-effort).
    pub fn spawn(config: &FleetConfig) -> std::io::Result<Fleet> {
        assert!(config.shards > 0, "a fleet needs at least one shard");
        let mut shards = Vec::with_capacity(config.shards);
        let mut shard_addrs = Vec::with_capacity(config.shards);
        for slot in 0..config.shards {
            let serve_config = ServeConfig {
                addr: "127.0.0.1:0".into(),
                cache_dir: config
                    .cache_dir
                    .as_ref()
                    .map(|root| root.join(format!("shard-{slot}"))),
                workers: config.shard_workers,
                queue_depth: config.queue_depth,
                mem_entries: config.mem_entries,
            };
            match Server::bind(serve_config) {
                Ok(server) => {
                    let handle = server.spawn();
                    shard_addrs.push(handle.addr().to_string());
                    shards.push(handle);
                }
                Err(e) => {
                    shutdown_all(&shard_addrs);
                    for handle in shards {
                        let _ = handle.wait();
                    }
                    return Err(e);
                }
            }
        }
        let router_config = RouterConfig {
            addr: config.addr.clone(),
            backends: shard_addrs.clone(),
            workers: config.router_workers,
            queue_depth: config.queue_depth,
            peer_warm: true,
        };
        match Router::bind(router_config) {
            Ok(router) => Ok(Fleet {
                router: router.spawn(),
                shards,
                shard_addrs,
            }),
            Err(e) => {
                shutdown_all(&shard_addrs);
                for handle in shards {
                    let _ = handle.wait();
                }
                Err(e)
            }
        }
    }

    /// The router's bound address — the fleet's single client entry
    /// point.
    pub fn addr(&self) -> SocketAddr {
        self.router.addr()
    }

    /// The shard addresses, in ring-slot order.
    pub fn shard_addrs(&self) -> &[String] {
        &self.shard_addrs
    }

    /// Blocks until the fleet shuts down (a `shutdown` request to the
    /// router stops the shards first, then the router) and returns every
    /// component's final counters.
    ///
    /// # Errors
    ///
    /// Propagates the first component I/O error.
    ///
    /// # Panics
    ///
    /// Panics if a component thread panicked.
    pub fn wait(self) -> std::io::Result<FleetReport> {
        let router = self.router.wait()?;
        let mut shards = Vec::with_capacity(self.shards.len());
        for handle in self.shards {
            shards.push(handle.wait()?);
        }
        Ok(FleetReport { router, shards })
    }
}

/// Best-effort shutdown fan-out (spawn-failure cleanup path).
fn shutdown_all(addrs: &[String]) {
    for addr in addrs {
        let _ = sampsim_serve::client::request_line(addr, "{\"op\":\"shutdown\"}");
    }
}

//! Deterministic shard placement by rendezvous (highest-random-weight)
//! hashing.
//!
//! For a key `k` and `n` shards, every shard is assigned the weight
//! `fnv64("sampsim-fleet-ring" ‖ k ‖ shard)`; the key routes to the
//! shard with the highest weight. Sorting all shards by descending
//! weight yields the key's *preference list* — position 0 is the owner,
//! position 1 is where the key lands if the owner disappears, and so on.
//!
//! Two properties make this the right shape for a cache fleet:
//!
//! - **Determinism across restarts.** The placement is a pure function
//!   of `(key, shard_count)` — no ring state to persist, so a router
//!   restarted over the same shard count routes every key identically.
//! - **Minimal movement.** Removing a shard only moves the keys that
//!   shard owned, and each moves exactly to its next-preference shard —
//!   which is the sibling the router's peer-warming protocol already
//!   filled. Every other key keeps its owner, so a rebalance invalidates
//!   nothing.

use sampsim_util::hash::Fnv64;

/// Domain tag so ring weights can never collide with other FNV uses of
/// the same key (`response_key` itself, cache file checksums, ...).
const RING_DOMAIN: &str = "sampsim-fleet-ring";

/// A rendezvous-hash view over `n` shard slots (indices `0..n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ring {
    shards: usize,
}

impl Ring {
    /// A ring over `shards` slots.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero — a fleet without shards cannot
    /// place anything.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a ring needs at least one shard");
        Ring { shards }
    }

    /// The number of shard slots.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The weight of `shard` for `key` — the rendezvous score.
    fn weight(key: u64, shard: usize) -> u64 {
        let mut h = Fnv64::new();
        h.write_str(RING_DOMAIN);
        h.write_u64(key);
        h.write_u64(shard as u64);
        h.finish()
    }

    /// The shard that owns `key`: the highest-weight slot. Ties break
    /// toward the lower index (FNV ties over distinct inputs are
    /// vanishingly rare; the break just keeps the function total).
    pub fn route(&self, key: u64) -> usize {
        (0..self.shards)
            .max_by_key(|&shard| (Self::weight(key, shard), std::cmp::Reverse(shard)))
            .expect("ring has at least one shard")
    }

    /// Every shard sorted by descending weight for `key`: the key's
    /// preference list. `preference(key)[0] == route(key)`, and if the
    /// owner is removed the key's new owner (in a ring over the
    /// surviving slots' weights) is the next *surviving* entry.
    pub fn preference(&self, key: u64) -> Vec<usize> {
        let mut shards: Vec<usize> = (0..self.shards).collect();
        shards.sort_by_key(|&shard| (std::cmp::Reverse(Self::weight(key, shard)), shard));
        shards
    }

    /// The owner of `key` when only `alive` slots remain in service:
    /// the highest-preference surviving slot. Returns `None` when no
    /// listed slot is valid for this ring.
    pub fn route_surviving(&self, key: u64, alive: &[usize]) -> Option<usize> {
        self.preference(key)
            .into_iter()
            .find(|shard| alive.contains(shard))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_total() {
        let ring = Ring::new(4);
        for key in 0..1000u64 {
            let owner = ring.route(key);
            assert!(owner < 4);
            assert_eq!(owner, ring.route(key), "stable for key {key}");
            assert_eq!(owner, Ring::new(4).route(key), "stable across rings");
        }
    }

    #[test]
    fn preference_is_a_permutation_led_by_the_owner() {
        let ring = Ring::new(5);
        for key in 0..200u64 {
            let pref = ring.preference(key);
            assert_eq!(pref[0], ring.route(key));
            let mut sorted = pref.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "not a permutation: {pref:?}");
        }
    }

    #[test]
    fn load_spreads_across_shards() {
        // Not a statistical test — just that no shard is starved or
        // dominant over a few thousand sequential keys.
        let ring = Ring::new(4);
        let mut counts = [0usize; 4];
        const KEYS: usize = 4000;
        for key in 0..KEYS as u64 {
            counts[ring.route(key)] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > KEYS / 8 && count < KEYS / 2,
                "shard {shard} owns {count}/{KEYS}: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_shard_moves_only_its_keys_to_their_next_preference() {
        let ring = Ring::new(4);
        const DEAD: usize = 2;
        let alive = [0usize, 1, 3];
        for key in 0..1000u64 {
            let owner = ring.route(key);
            let after = ring.route_surviving(key, &alive).unwrap();
            if owner != DEAD {
                assert_eq!(after, owner, "key {key} moved without cause");
            } else {
                // The orphaned key lands exactly on its second
                // preference — the shard peer warming pre-filled.
                assert_eq!(after, ring.preference(key)[1], "key {key}");
                assert_ne!(after, DEAD);
            }
        }
    }

    #[test]
    fn single_shard_ring_routes_everything_to_it() {
        let ring = Ring::new(1);
        for key in [0u64, 7, u64::MAX] {
            assert_eq!(ring.route(key), 0);
            assert_eq!(ring.preference(key), vec![0]);
        }
    }
}

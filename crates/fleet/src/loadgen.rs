//! A std-only load generator for the serving stack, and the
//! `sampsim-serve-bench/v1` report it emits.
//!
//! The generator spawns a fully in-process fleet (ephemeral loopback
//! ports), then drives it the way a real client population would:
//! `clients` threads race down a shared, seed-deterministic schedule of
//! request lines over real TCP sockets, with the bounded-retry client
//! policy active. The schedule mixes two traffic classes:
//!
//! - **cold** — a config never seen before (unique `slice` value), so
//!   the owning shard must execute the pipeline;
//! - **warm** — drawn from a small pool of repeated configs, so after
//!   each pool entry's first execution every reply is a cache hit or a
//!   coalesced flight.
//!
//! The *schedule* is a pure function of the seed; the interleaving and
//! latencies are not (that is the point of a load test). The report
//! therefore commits to structure, not timings: [`validate_report`]
//! checks the schema, the accounting invariants (every request accounted
//! for, zero errors, percentile ordering), and the presence of the
//! fleet-wide counters — exactly what `scripts/check.sh` gates on for
//! the committed `BENCH_serve.json` baseline.

use crate::{Fleet, FleetConfig};
use sampsim_serve::client::{self, RetryPolicy};
use sampsim_serve::protocol;
use sampsim_serve::Stats;
use sampsim_util::json::{self, Value};
use sampsim_util::rng::Xoshiro256StarStar;
use sampsim_util::stats::percentile;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// The report schema identifier.
pub const SCHEMA: &str = "sampsim-serve-bench/v1";

/// A `cold:warm` traffic mix, e.g. `1:3` = one never-seen config for
/// every three repeated-pool requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Weight of cold (unique-config) requests.
    pub cold: u32,
    /// Weight of warm (repeated-pool) requests.
    pub warm: u32,
}

impl Mix {
    /// Parses the `cold:warm` form (`"1:3"`).
    ///
    /// # Errors
    ///
    /// Returns a message when the form is not two integers with a
    /// positive sum.
    pub fn parse(s: &str) -> Result<Mix, String> {
        let err = || format!("mix must be 'cold:warm' integers, got {s:?}");
        let (cold, warm) = s.split_once(':').ok_or_else(err)?;
        let cold: u32 = cold.trim().parse().map_err(|_| err())?;
        let warm: u32 = warm.trim().parse().map_err(|_| err())?;
        if cold + warm == 0 {
            return Err(format!("mix {s:?} has no traffic"));
        }
        Ok(Mix { cold, warm })
    }

    fn render(&self) -> String {
        format!("{}:{}", self.cold, self.warm)
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Fleet size (backend shards).
    pub shards: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Total requests across all clients.
    pub requests: usize,
    /// Cold/warm traffic mix.
    pub mix: Mix,
    /// Schedule + retry-jitter seed.
    pub seed: u64,
    /// Marked in the report so readers know which preset produced it.
    pub quick: bool,
}

impl LoadgenConfig {
    /// The quick preset used by `scripts/check.sh`: small but still
    /// concurrent and mixed.
    pub fn quick() -> Self {
        LoadgenConfig {
            shards: 2,
            clients: 4,
            requests: 24,
            mix: Mix { cold: 1, warm: 3 },
            seed: 42,
            quick: true,
        }
    }

    /// The full preset behind the committed `BENCH_serve.json`.
    pub fn full() -> Self {
        LoadgenConfig {
            shards: 3,
            clients: 8,
            requests: 96,
            mix: Mix { cold: 1, warm: 3 },
            seed: 42,
            quick: false,
        }
    }
}

/// The deterministic request schedule: `requests` protocol lines. Cold
/// entries get a never-repeating `slice` value; warm entries draw from a
/// four-config pool. Pure in the seed — two loadgen runs with the same
/// config send exactly the same lines (in whatever order the clients
/// race to them).
pub fn schedule(config: &LoadgenConfig) -> Vec<String> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(config.seed);
    let mut cold_seq = 0u64;
    (0..config.requests)
        .map(|_| {
            let total = u64::from(config.mix.cold + config.mix.warm);
            if rng.next_below(total) < u64::from(config.mix.cold) {
                // Unique slice ⇒ unique response key ⇒ real execution.
                // 40 + 2·j never collides with the warm pool's default
                // slice (20 at scale 0.002).
                cold_seq += 1;
                protocol::run_request_line(
                    "omnetpp_s",
                    0.002,
                    Some(38 + 2 * cold_seq),
                    Some(4),
                    None,
                    None,
                )
            } else {
                let maxk = 5 + rng.next_below(4) as usize;
                protocol::run_request_line("omnetpp_s", 0.002, None, Some(maxk), None, None)
            }
        })
        .collect()
}

/// One client's view of one request.
struct Sample {
    latency_ms: f64,
    attempts: u32,
    ok: bool,
}

/// Spawns the fleet, drives the schedule, and returns the rendered
/// report document.
///
/// # Errors
///
/// Returns the I/O error if the fleet cannot be spawned or shut down;
/// per-request failures are *counted*, not fatal.
pub fn run(config: &LoadgenConfig) -> std::io::Result<String> {
    let lines = schedule(config);
    let fleet = Fleet::spawn(&FleetConfig::ephemeral(config.shards))?;
    let addr = fleet.addr().to_string();

    let next = AtomicUsize::new(0);
    let started = Instant::now();
    let samples: Vec<Sample> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..config.clients.max(1))
            .map(|client_id| {
                let lines = &lines;
                let next = &next;
                let addr = &addr;
                let policy = RetryPolicy {
                    attempts: 4,
                    base_ms: 5,
                    max_ms: 200,
                    seed: config
                        .seed
                        .wrapping_add((client_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                };
                s.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= lines.len() {
                            return mine;
                        }
                        let begin = Instant::now();
                        let outcome = client::request_line_with_retry(addr, &lines[i], &policy);
                        let latency_ms = begin.elapsed().as_secs_f64() * 1e3;
                        mine.push(match outcome {
                            Ok(got) => Sample {
                                latency_ms,
                                attempts: got.attempts,
                                ok: !protocol::is_error_reply(&got.reply),
                            },
                            Err(_) => Sample {
                                latency_ms,
                                attempts: policy.attempts,
                                ok: false,
                            },
                        });
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client threads do not panic"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    // Fleet-wide counters before shutdown (the stats op sums shards).
    let fleet_stats = client::request_line(&addr, "{\"op\":\"stats\"}")
        .ok()
        .and_then(|reply| Stats::from_json(&reply))
        .unwrap_or_default();
    client::request_line(&addr, "{\"op\":\"shutdown\"}")?;
    let report = fleet.wait()?;

    let latencies: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
    let ok = samples.iter().filter(|s| s.ok).count();
    let errors = samples.len() - ok;
    let retries: u64 = samples.iter().map(|s| u64::from(s.attempts - 1)).sum();
    let mean = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    let max = latencies.iter().copied().fold(0.0f64, f64::max);
    let throughput = samples.len() as f64 / elapsed.max(f64::MIN_POSITIVE);

    let router = report.router;
    Ok(format!(
        concat!(
            "{{\"schema\":\"{schema}\",",
            "\"config\":{{\"shards\":{shards},\"clients\":{clients},\"requests\":{requests},",
            "\"mix\":\"{mix}\",\"seed\":{seed},\"quick\":{quick}}},",
            "\"totals\":{{\"sent\":{sent},\"ok\":{ok},\"errors\":{errors},\"retries\":{retries}}},",
            "\"latency_ms\":{{\"p50\":{p50:?},\"p99\":{p99:?},\"max\":{max:?},\"mean\":{mean:?}}},",
            "\"throughput_rps\":{rps:?},",
            "\"fleet\":{fleet},",
            "\"router\":{{\"requests\":{rreq},\"routed\":{routed},\"degraded\":{degraded},",
            "\"peer_warms_sent\":{warms},\"busy_rejects\":{rbusy}}}}}"
        ),
        schema = SCHEMA,
        shards = config.shards,
        clients = config.clients,
        requests = config.requests,
        mix = config.mix.render(),
        seed = config.seed,
        quick = config.quick,
        sent = samples.len(),
        ok = ok,
        errors = errors,
        retries = retries,
        p50 = percentile(&latencies, 50.0),
        p99 = percentile(&latencies, 99.0),
        max = max,
        mean = mean,
        rps = throughput,
        fleet = stats_object(&fleet_stats),
        rreq = router.requests,
        routed = router.routed,
        degraded = router.degraded,
        warms = router.peer_warms_sent,
        rbusy = router.busy_rejects,
    ))
}

/// Renders shard [`Stats`] as a bare JSON object (no `"ok"` tag).
fn stats_object(stats: &Stats) -> String {
    let json = stats.to_json();
    // to_json emits {"ok":"stats","requests":...}; strip the tag.
    format!(
        "{{{}",
        json.strip_prefix("{\"ok\":\"stats\",")
            .expect("Stats::to_json shape is stable")
    )
}

fn field<'a>(doc: &'a Value, name: &str, ctx: &str) -> Result<&'a Value, String> {
    doc.get(name)
        .ok_or_else(|| format!("{ctx}: missing {name}"))
}

fn number(doc: &Value, name: &str, ctx: &str) -> Result<f64, String> {
    let v = field(doc, name, ctx)?
        .as_f64()
        .ok_or_else(|| format!("{ctx}: {name} is not a number"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("{ctx}: {name} = {v} is not a valid count/timing"));
    }
    Ok(v)
}

/// Validates a `sampsim-serve-bench/v1` report: schema identity, the
/// accounting invariants (`sent = ok + errors`, `errors = 0`, `sent =
/// config.requests`), percentile ordering, positive throughput, and the
/// fleet/router counter objects.
///
/// # Errors
///
/// Returns the first violated rule as a human-readable message.
pub fn validate_report(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let schema = field(&doc, "schema", "report")?
        .as_str()
        .ok_or("schema is not a string")?;
    if schema != SCHEMA {
        return Err(format!("schema is '{schema}', expected '{SCHEMA}'"));
    }

    let config = field(&doc, "config", "report")?;
    for name in ["shards", "clients", "requests"] {
        if number(config, name, "config")? < 1.0 {
            return Err(format!("config: {name} must be at least 1"));
        }
    }
    let mix = field(config, "mix", "config")?
        .as_str()
        .ok_or("config: mix is not a string")?;
    Mix::parse(mix)?;
    number(config, "seed", "config")?;
    if field(config, "quick", "config")?.as_bool().is_none() {
        return Err("config: quick is not a bool".into());
    }

    let totals = field(&doc, "totals", "report")?;
    let sent = number(totals, "sent", "totals")?;
    let ok = number(totals, "ok", "totals")?;
    let errors = number(totals, "errors", "totals")?;
    number(totals, "retries", "totals")?;
    if sent != ok + errors {
        return Err(format!("totals: sent {sent} != ok {ok} + errors {errors}"));
    }
    if errors != 0.0 {
        return Err(format!("totals: {errors} requests failed"));
    }
    if sent != number(config, "requests", "config")? {
        return Err(format!("totals: sent {sent} != config.requests"));
    }

    let latency = field(&doc, "latency_ms", "report")?;
    let p50 = number(latency, "p50", "latency_ms")?;
    let p99 = number(latency, "p99", "latency_ms")?;
    let max = number(latency, "max", "latency_ms")?;
    number(latency, "mean", "latency_ms")?;
    if !(p50 <= p99 && p99 <= max) {
        return Err(format!(
            "latency_ms: percentile order violated (p50 {p50}, p99 {p99}, max {max})"
        ));
    }

    let rps = number(&doc, "throughput_rps", "report")?;
    if rps <= 0.0 {
        return Err(format!("throughput_rps {rps} is not positive"));
    }

    let fleet = field(&doc, "fleet", "report")?;
    for name in Stats::FIELDS {
        number(fleet, name, "fleet")?;
    }
    // The fleet must have actually executed something and served the
    // warm traffic from its caches.
    if number(fleet, "executions", "fleet")? < 1.0 {
        return Err("fleet: no pipeline execution recorded".into());
    }
    let router = field(&doc, "router", "report")?;
    for name in [
        "requests",
        "routed",
        "degraded",
        "peer_warms_sent",
        "busy_rejects",
    ] {
        number(router, name, "router")?;
    }
    if number(router, "degraded", "router")? != 0.0 {
        return Err("router: degraded replies in a healthy-fleet benchmark".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_parses_and_rejects() {
        assert_eq!(Mix::parse("1:3").unwrap(), Mix { cold: 1, warm: 3 });
        assert_eq!(Mix::parse(" 2 : 0 ").unwrap(), Mix { cold: 2, warm: 0 });
        for bad in ["", "1", "1:", ":3", "a:b", "0:0", "1:3:5"] {
            assert!(Mix::parse(bad).is_err(), "{bad:?}");
        }
        assert_eq!(Mix { cold: 1, warm: 3 }.render(), "1:3");
    }

    #[test]
    fn schedule_is_seed_deterministic_and_mixed() {
        let config = LoadgenConfig::quick();
        let a = schedule(&config);
        let b = schedule(&config);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), config.requests);
        // Both classes are present, and every line parses.
        let colds = a.iter().filter(|l| l.contains("\"slice\":")).count();
        assert!(colds > 0 && colds < a.len(), "{colds}/{} cold", a.len());
        for line in &a {
            assert!(protocol::parse_request(line).is_ok(), "{line}");
        }
        // Cold slices never repeat (each must be a real execution).
        let mut slices: Vec<&str> = a
            .iter()
            .filter_map(|l| l.split("\"slice\":").nth(1))
            .collect();
        let before = slices.len();
        slices.sort_unstable();
        slices.dedup();
        assert_eq!(slices.len(), before, "cold configs must be unique");
        // A different seed reshuffles.
        let other = schedule(&LoadgenConfig { seed: 43, ..config });
        assert_ne!(a, other);
    }

    fn synthetic_report() -> String {
        format!(
            concat!(
                "{{\"schema\":\"{}\",",
                "\"config\":{{\"shards\":2,\"clients\":4,\"requests\":24,",
                "\"mix\":\"1:3\",\"seed\":42,\"quick\":true}},",
                "\"totals\":{{\"sent\":24,\"ok\":24,\"errors\":0,\"retries\":0}},",
                "\"latency_ms\":{{\"p50\":1.5,\"p99\":20.0,\"max\":25.0,\"mean\":4.0}},",
                "\"throughput_rps\":100.0,",
                "\"fleet\":{{\"requests\":26,\"executions\":9,\"coalesced\":2,",
                "\"mem_hits\":13,\"disk_hits\":0,\"misses\":9,\"busy_rejects\":0,",
                "\"stage_hits\":0,\"peer_warms\":9}},",
                "\"router\":{{\"requests\":26,\"routed\":24,\"degraded\":0,",
                "\"peer_warms_sent\":9,\"busy_rejects\":0}}}}"
            ),
            SCHEMA
        )
    }

    #[test]
    fn validate_accepts_the_reference_shape() {
        validate_report(&synthetic_report()).unwrap();
    }

    #[test]
    fn validate_rejects_broken_reports() {
        let good = synthetic_report();
        for (from, to, why) in [
            (SCHEMA, "sampsim-serve-bench/v0", "wrong schema"),
            ("\"errors\":0", "\"errors\":1", "failed requests"),
            ("\"sent\":24", "\"sent\":23", "accounting broken"),
            ("\"p50\":1.5", "\"p50\":30.0", "percentile order"),
            (
                "\"throughput_rps\":100.0",
                "\"throughput_rps\":0.0",
                "zero rps",
            ),
            ("\"executions\":9", "\"executions\":0", "nothing executed"),
            ("\"degraded\":0", "\"degraded\":2", "degraded fleet"),
            ("\"mix\":\"1:3\"", "\"mix\":\"nope\"", "bad mix"),
            (",\"peer_warms\":9", "", "missing fleet field"),
        ] {
            let broken = good.replacen(from, to, 1);
            assert_ne!(broken, good, "{why}: pattern not found");
            assert!(validate_report(&broken).is_err(), "{why}");
        }
        assert!(validate_report("not json").is_err());
    }
}

//! The fleet front-end: a TCP router that shards the content-addressed
//! key space across `sampsim-serve` backends.
//!
//! The router speaks the same line protocol as a single daemon, so every
//! client (`sampsim request`, the load generator, tests) can point at a
//! router or a daemon interchangeably:
//!
//! - `run` — the router computes the request's content-addressed key
//!   *without* executing anything ([`sampsim_serve::service::route_key`]),
//!   forwards the original line verbatim to the key's rendezvous owner
//!   ([`crate::ring::Ring`]), and relays the shard's reply byte-for-byte.
//!   Replies therefore stay byte-identical to `sampsim run` stdout.
//!   After a successful run reply, the router warms the key's
//!   next-preference shard over the `peer-put` op, so the exact shard
//!   that inherits the key on a rebalance already holds the bytes.
//! - `suite` — the batch op: one run per benchmark, fanned across the
//!   shard pool with `sampsim_exec::parallel_stream`, streamed back as
//!   one envelope line per benchmark in request order plus a summary.
//! - `stats` — fans to every shard and replies with the fleet-wide sum
//!   of all tier counters (plus `shards`/`unreachable` fields).
//! - `shutdown` — shuts every shard down, then the router itself.
//!
//! Failure semantics: a dead shard never hangs a client. A forward that
//! cannot connect yields a typed `{"error":{"code":"degraded",...}}`
//! reply naming the shard, and the router keeps serving keys owned by
//! surviving shards.

use crate::ring::Ring;
use sampsim_exec::Jobs;
use sampsim_serve::acceptor::{self, AcceptControl};
use sampsim_serve::protocol::{self, Request};
use sampsim_serve::service::RunRequest;
use sampsim_serve::{client, service, write_reply_line, Stats};
use sampsim_spec2017::BenchmarkId;
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address (`host:port`; port 0 binds an ephemeral port).
    pub addr: String,
    /// Backend shard addresses, in ring-slot order. Slot index is the
    /// shard's identity: restarting a router over the same ordered list
    /// reproduces the placement exactly.
    pub backends: Vec<String>,
    /// Router worker threads (forwarding is I/O-bound and cheap).
    pub workers: Jobs,
    /// Admission-queue depth; requests beyond it get a `busy` reply.
    pub queue_depth: usize,
    /// Warm each served key's next-preference shard via `peer-put`
    /// (disabled for single-shard fleets automatically).
    pub peer_warm: bool,
}

impl RouterConfig {
    /// A default-shaped config over the given backends.
    pub fn over(addr: &str, backends: Vec<String>) -> Self {
        RouterConfig {
            addr: addr.to_string(),
            backends,
            workers: Jobs::Auto,
            queue_depth: sampsim_serve::DEFAULT_QUEUE_DEPTH,
            peer_warm: true,
        }
    }
}

/// Router-level counters (shard counters live in shard [`Stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterStats {
    /// Requests handled (every op, including failures).
    pub requests: u64,
    /// Run/peer-put forwards that reached a shard and returned a reply.
    pub routed: u64,
    /// Forwards answered with a typed `degraded` reply (dead shard).
    pub degraded: u64,
    /// `peer-put` warm messages successfully stored on a sibling.
    pub peer_warms_sent: u64,
    /// Requests refused with a `busy` reply at admission.
    pub busy_rejects: u64,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    routed: AtomicU64,
    degraded: AtomicU64,
    peer_warms_sent: AtomicU64,
    busy_rejects: AtomicU64,
}

struct Shared {
    queue: Mutex<VecDeque<(TcpStream, String)>>,
    available: Condvar,
    shutdown: AtomicBool,
    acceptor_done: AtomicBool,
    counters: Counters,
    ring: Ring,
    backends: Vec<String>,
    queue_depth: usize,
    peer_warm: bool,
    fan_jobs: Jobs,
}

impl Shared {
    fn stats(&self) -> RouterStats {
        RouterStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            routed: self.counters.routed.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
            peer_warms_sent: self.counters.peer_warms_sent.load(Ordering::Relaxed),
            busy_rejects: self.counters.busy_rejects.load(Ordering::Relaxed),
        }
    }

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

impl AcceptControl for Shared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn dispatch(&self, stream: TcpStream, line: String) {
        let mut queue = self.queue.lock().unwrap();
        if queue.len() >= self.queue_depth {
            drop(queue);
            Shared::bump(&self.counters.busy_rejects);
            write_reply_line(stream, &protocol::busy_reply(self.queue_depth));
        } else {
            queue.push_back((stream, line));
            drop(queue);
            self.available.notify_one();
        }
    }
}

/// A bound, not-yet-serving router.
pub struct Router {
    config: RouterConfig,
    listener: TcpListener,
    addr: SocketAddr,
}

impl Router {
    /// Binds the listen socket (so the port is known before serving).
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the address cannot be bound, or
    /// `InvalidInput` when no backends were given.
    pub fn bind(config: RouterConfig) -> std::io::Result<Self> {
        if config.backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a router needs at least one backend shard",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        Ok(Router {
            config,
            listener,
            addr,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until a `shutdown` request arrives (which also shuts every
    /// backend down), then returns the router's counters.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the listener cannot enter non-blocking
    /// mode.
    pub fn serve(self) -> std::io::Result<RouterStats> {
        let shared = Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            acceptor_done: AtomicBool::new(false),
            counters: Counters::default(),
            ring: Ring::new(self.config.backends.len()),
            backends: self.config.backends.clone(),
            queue_depth: self.config.queue_depth.max(1),
            peer_warm: self.config.peer_warm && self.config.backends.len() > 1,
            fan_jobs: self.config.workers,
        };
        let worker_ids: Vec<usize> = (0..self.config.workers.get()).collect();
        std::thread::scope(|s| {
            let acceptor = s.spawn(|| {
                let result = acceptor::accept_loop(&self.listener, &shared);
                let _queue = shared.queue.lock().unwrap();
                shared.acceptor_done.store(true, Ordering::SeqCst);
                shared.available.notify_all();
                result
            });
            sampsim_exec::parallel_map(self.config.workers, &worker_ids, |_, _| {
                worker_loop(&shared)
            });
            acceptor.join().expect("acceptor does not panic")?;
            Ok(shared.stats())
        })
    }

    /// Runs [`Router::serve`] on a background thread.
    pub fn spawn(self) -> RouterHandle {
        let addr = self.addr;
        let thread = std::thread::spawn(move || self.serve());
        RouterHandle { addr, thread }
    }
}

/// Handle to a router running on a background thread.
pub struct RouterHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<RouterStats>>,
}

impl RouterHandle {
    /// The router's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the router shuts down and returns its counters.
    ///
    /// # Errors
    ///
    /// Propagates the router's I/O error.
    ///
    /// # Panics
    ///
    /// Panics if the router thread panicked.
    pub fn wait(self) -> std::io::Result<RouterStats> {
        self.thread.join().expect("router thread panicked")
    }
}

fn next_request(shared: &Shared) -> Option<(TcpStream, String)> {
    let mut queue = shared.queue.lock().unwrap();
    loop {
        if let Some(item) = queue.pop_front() {
            return Some(item);
        }
        if shared.acceptor_done.load(Ordering::SeqCst) {
            return None;
        }
        queue = shared.available.wait(queue).unwrap();
    }
}

fn worker_loop(shared: &Shared) {
    while let Some((stream, line)) = next_request(shared) {
        if handle_request(stream, &line, shared) {
            shared.shutdown.store(true, Ordering::SeqCst);
        }
    }
}

/// Serves one request line. Returns whether a shutdown was requested.
fn handle_request(stream: TcpStream, line: &str, shared: &Shared) -> bool {
    Shared::bump(&shared.counters.requests);
    match protocol::parse_request(line) {
        Ok(Request::Run(request)) => {
            let reply = match service::route_key(&request) {
                // Pre-preflight failures render the same typed reply a
                // shard would; no forward needed.
                Err(e) => e.reply(),
                Ok(key) => forward_run(shared, key, line),
            };
            write_reply_line(stream, &reply);
            false
        }
        Ok(Request::Suite { benches, template }) => {
            handle_suite(stream, shared, &benches, &template);
            false
        }
        Ok(Request::Ping) => {
            write_reply_line(stream, &protocol::pong_reply());
            false
        }
        Ok(Request::Stats) => {
            write_reply_line(stream, &fleet_stats_reply(shared));
            false
        }
        Ok(Request::Shutdown) => {
            // Shards first (each drains its own queue), then the router.
            for addr in &shared.backends {
                let _ = client::request_line(addr, "{\"op\":\"shutdown\"}");
            }
            write_reply_line(stream, &protocol::shutdown_reply());
            true
        }
        Ok(Request::PeerPut { key, .. }) => {
            // External warm-fill: forward to the key's owner verbatim.
            let reply = forward_to(shared, shared.ring.route(key), line);
            write_reply_line(stream, &reply);
            false
        }
        Err(message) => {
            write_reply_line(stream, &protocol::error_reply("bad-request", &message));
            false
        }
    }
}

/// Forwards a run line to its key's owner and relays the reply
/// byte-for-byte; on success, warms the next-preference sibling.
fn forward_run(shared: &Shared, key: u64, line: &str) -> String {
    let preference = shared.ring.preference(key);
    let reply = forward_to(shared, preference[0], line);
    if shared.peer_warm && !protocol::is_error_reply(&reply) {
        let warm = protocol::peer_put_line(key, &reply);
        if let Ok(ack) = client::request_line(&shared.backends[preference[1]], &warm) {
            if ack == protocol::peer_put_reply() {
                Shared::bump(&shared.counters.peer_warms_sent);
            }
        }
    }
    reply
}

/// One forward to one shard; a transport failure becomes the typed
/// `degraded` reply instead of a hang or dropped connection.
fn forward_to(shared: &Shared, shard: usize, line: &str) -> String {
    match client::request_line(&shared.backends[shard], line) {
        Ok(reply) => {
            Shared::bump(&shared.counters.routed);
            reply
        }
        Err(e) => {
            Shared::bump(&shared.counters.degraded);
            protocol::error_reply(
                "degraded",
                &format!(
                    "shard {shard} ({}) unreachable: {e}",
                    shared.backends[shard]
                ),
            )
        }
    }
}

/// The batch op: fan one run per benchmark across the shard pool and
/// stream envelope lines back in request order, then a summary.
fn handle_suite(mut stream: TcpStream, shared: &Shared, benches: &[String], template: &RunRequest) {
    let names: Vec<String> = if benches.is_empty() {
        BenchmarkId::ALL
            .iter()
            .map(|id| id.name().to_string())
            .collect()
    } else {
        benches.to_vec()
    };
    let mut errors = 0usize;
    let mut write_line = |line: &str| {
        let _ = stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush());
    };
    {
        let run_one = |_i: usize, bench: &String| -> String {
            let request = RunRequest {
                bench: bench.clone(),
                ..template.clone()
            };
            let line = protocol::run_request_line(
                bench,
                request.scale,
                request.slice,
                request.maxk,
                request.strategy.as_deref(),
                request.kmeans.as_deref(),
            );
            match service::route_key(&request) {
                Err(e) => e.reply(),
                Ok(key) => forward_run(shared, key, &line),
            }
        };
        // parallel_stream delivers results in input order as a
        // contiguous prefix completes, so the client sees benchmark i
        // before benchmark i+1 — streaming, yet deterministic.
        sampsim_exec::parallel_stream(shared.fan_jobs, &names, run_one, |i, reply: String| {
            if protocol::is_error_reply(&reply) {
                errors += 1;
            }
            write_line(&protocol::suite_item_line(i, &names[i], &reply));
        });
    }
    write_line(&protocol::suite_summary_line(names.len(), errors));
}

/// Fans `stats` to every shard and sums the counters; unreachable
/// shards are counted, not fatal.
fn fleet_stats_reply(shared: &Shared) -> String {
    let mut totals = Stats::default();
    let mut unreachable = 0usize;
    for addr in &shared.backends {
        match client::request_line(addr, "{\"op\":\"stats\"}")
            .ok()
            .and_then(|reply| Stats::from_json(&reply))
        {
            Some(stats) => totals.merge(&stats),
            None => unreachable += 1,
        }
    }
    let json = totals.to_json();
    // Extend the merged object with fleet-level fields; shard parsers
    // ignore unknown keys, so the line still round-trips Stats::from_json.
    format!(
        "{},\"shards\":{},\"unreachable\":{}}}",
        &json[..json.len() - 1],
        shared.backends.len(),
        unreachable
    )
}

//! A minimal property-based testing harness.
//!
//! The offline build cannot depend on `proptest`, so this module provides
//! the subset the test suite actually needs: deterministic case
//! generation from a named seed, uniform draws over ranges, random
//! vectors, and failure messages that identify the failing case so it
//! can be replayed in isolation.
//!
//! ```
//! use sampsim_util::prop::{run_cases, Gen};
//!
//! run_cases("addition-commutes", 32, |g| {
//!     let (a, b) = (g.u64_in(0..1_000), g.u64_in(0..1_000));
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Unlike `proptest` there is no shrinking: cases are small by
//! construction, and the failing case index (printed on panic) replays
//! deterministically via [`Gen::for_case`].

use crate::hash::Fnv64;
use crate::rng::Xoshiro256StarStar;
use std::ops::Range;

/// A deterministic source of arbitrary values for one test case.
#[derive(Debug)]
pub struct Gen {
    rng: Xoshiro256StarStar,
}

impl Gen {
    /// The generator for case `case` of the property named `name` —
    /// exactly the generator [`run_cases`] hands the closure, for
    /// replaying a reported failure in isolation.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h = Fnv64::new();
        h.write_str(name);
        h.write_u64(u64::from(case));
        Self {
            rng: Xoshiro256StarStar::seed_from_u64(h.finish()),
        }
    }

    /// A uniform draw from `range` (half-open, like the stdlib).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.rng.next_below(range.end - range.start)
    }

    /// A uniform `usize` draw from `range`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// A uniform `f64` draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn f64_in(&mut self, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.rng.next_f64() * (range.end - range.start)
    }

    /// A vector with a length drawn from `len` whose elements come from
    /// `item`.
    pub fn vec_of<T>(&mut self, len: Range<usize>, mut item: impl FnMut(&mut Self) -> T) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| item(self)).collect()
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }
}

/// Runs `property` for `cases` deterministic cases. A panicking case is
/// reported by name and index (replay it with [`Gen::for_case`]) and the
/// panic is propagated so the enclosing `#[test]` fails normally.
///
/// # Panics
///
/// Propagates the first failing case's panic.
pub fn run_cases(name: &str, cases: u32, mut property: impl FnMut(&mut Gen)) {
    for case in 0..cases {
        let mut gen = Gen::for_case(name, case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut gen)));
        if let Err(payload) = result {
            eprintln!(
                "property '{name}' failed at case {case}/{cases} \
                 (replay with Gen::for_case(\"{name}\", {case}))"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut a = Gen::for_case("det", 3);
        let mut b = Gen::for_case("det", 3);
        for _ in 0..100 {
            assert_eq!(a.u64_in(0..1_000_000), b.u64_in(0..1_000_000));
        }
        // Different case index, different stream.
        let mut c = Gen::for_case("det", 4);
        let same =
            (0..100).all(|_| Gen::for_case("det", 3).u64_in(0..u64::MAX) == c.u64_in(0..u64::MAX));
        assert!(!same);
    }

    #[test]
    fn draws_respect_ranges() {
        run_cases("ranges", 64, |g| {
            let x = g.u64_in(10..20);
            assert!((10..20).contains(&x));
            let f = g.f64_in(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let v = g.vec_of(1..9, |g| g.usize_in(0..3));
            assert!((1..9).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 3));
        });
    }

    #[test]
    fn failing_case_propagates_panic() {
        let caught = std::panic::catch_unwind(|| {
            run_cases("always-fails", 8, |_| panic!("boom"));
        });
        assert!(caught.is_err());
    }
}

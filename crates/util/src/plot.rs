//! Minimal ASCII plotting for the benchmark harness.
//!
//! The paper's exhibits are mostly plots; the harness prints the underlying
//! numbers as tables and, where a trend is the message (Figs. 4 and 9),
//! also sketches it with these helpers so a terminal reader can see the
//! shape at a glance.

/// Renders series of `(x, y)` points as an ASCII chart of the given
/// height. X positions are treated as evenly spaced in input order (the
/// harness plots sweeps over ordered parameter values); each series gets
/// its own glyph.
///
/// # Panics
///
/// Panics if no series is given, the series differ in length, are empty,
/// or `height < 2`.
pub fn line_chart(series: &[(&str, &[f64])], height: usize) -> String {
    assert!(!series.is_empty(), "need at least one series");
    assert!(height >= 2, "chart height must be at least 2");
    let n = series[0].1.len();
    assert!(n >= 1, "series must be non-empty");
    assert!(
        series.iter().all(|(_, ys)| ys.len() == n),
        "series must have equal lengths"
    );
    let glyphs = ['*', 'o', '+', 'x', '#', '@'];
    let all: Vec<f64> = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .collect();
    let max = all.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = all.iter().cloned().fold(f64::INFINITY, f64::min);
    let span = if (max - min).abs() < f64::EPSILON {
        1.0
    } else {
        max - min
    };
    // Column spacing: 3 chars per point keeps small sweeps readable.
    let width = n * 3;
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for (i, &y) in ys.iter().enumerate() {
            let row = ((max - y) / span * (height - 1) as f64).round() as usize;
            let col = i * 3 + 1;
            grid[row.min(height - 1)][col] = glyph;
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{max:>10.3} |")
        } else if r == height - 1 {
            format!("{min:>10.3} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(si, (name, _))| format!("{} {}", glyphs[si % glyphs.len()], name))
        .collect();
    out.push_str(&format!("{:>12}{}\n", "", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_extremes_on_correct_rows() {
        let chart = line_chart(&[("a", &[0.0, 10.0])], 5);
        let lines: Vec<&str> = chart.lines().collect();
        // Max label on the first row, min on the last grid row.
        assert!(lines[0].trim_start().starts_with("10.000"));
        assert!(lines[0].contains('*'), "max point on top row: {chart}");
        assert!(lines[4].contains('*'), "min point on bottom row: {chart}");
    }

    #[test]
    fn multiple_series_get_distinct_glyphs() {
        let chart = line_chart(&[("up", &[1.0, 2.0]), ("down", &[2.0, 1.0])], 4);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("* up"));
        assert!(chart.contains("o down"));
    }

    #[test]
    fn flat_series_does_not_panic() {
        let chart = line_chart(&[("flat", &[3.0, 3.0, 3.0])], 3);
        assert!(chart.contains('*'));
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn unequal_series_panic() {
        line_chart(&[("a", &[1.0]), ("b", &[1.0, 2.0])], 3);
    }
}

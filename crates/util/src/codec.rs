//! Minimal, versioned binary serialization.
//!
//! Pinballs and experiment artifacts are persisted to disk and reloaded by
//! separate benchmark binaries, so the format must be stable and
//! self-checking. This module provides a little-endian, length-prefixed
//! codec with a magic/version header — deliberately small instead of pulling
//! in a serde format crate (see DESIGN.md §6).
//!
//! # Example
//!
//! ```
//! use sampsim_util::codec::{Decode, Decoder, Encode, Encoder};
//!
//! let mut enc = Encoder::new();
//! 42u64.encode(&mut enc);
//! "hello".to_string().encode(&mut enc);
//! let bytes = enc.into_bytes();
//!
//! let mut dec = Decoder::new(&bytes);
//! assert_eq!(u64::decode(&mut dec).unwrap(), 42);
//! assert_eq!(String::decode(&mut dec).unwrap(), "hello");
//! ```

use std::fmt;

/// Error produced when decoding malformed or truncated bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    UnexpectedEnd {
        /// Bytes that were needed.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// A length prefix or discriminant had an invalid value.
    Invalid(&'static str),
    /// The file header did not match the expected magic/version.
    BadHeader {
        /// Expected magic value.
        expected: u32,
        /// Found magic value.
        found: u32,
    },
    /// String bytes were not valid UTF-8.
    Utf8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} bytes, {remaining} remaining"
            ),
            DecodeError::Invalid(what) => write!(f, "invalid encoding: {what}"),
            DecodeError::BadHeader { expected, found } => write!(
                f,
                "bad header: expected magic {expected:#010x}, found {found:#010x}"
            ),
            DecodeError::Utf8 => write!(f, "string bytes were not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Growable byte buffer that values are encoded into.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an encoder that starts with a magic/version header, matched
    /// by [`Decoder::with_header`].
    pub fn with_header(magic: u32, version: u16) -> Self {
        let mut enc = Self::new();
        enc.put_u32(magic);
        enc.put_u16(version);
        enc
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Consumes the encoder, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cursor over bytes that values are decoded from.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Creates a decoder that first validates a magic/version header written
    /// by [`Encoder::with_header`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::BadHeader`] on a magic mismatch and
    /// [`DecodeError::Invalid`] on a version mismatch.
    pub fn with_header(buf: &'a [u8], magic: u32, version: u16) -> Result<Self, DecodeError> {
        let mut dec = Self::new(buf);
        let found = dec.take_u32()?;
        if found != magic {
            return Err(DecodeError::BadHeader {
                expected: magic,
                found,
            });
        }
        let v = dec.take_u16()?;
        if v != version {
            return Err(DecodeError::Invalid("unsupported format version"));
        }
        Ok(dec)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(DecodeError::UnexpectedEnd {
                needed: n,
                remaining: self.buf.len() - self.pos,
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn take_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Types that can serialize themselves into an [`Encoder`].
pub trait Encode {
    /// Appends this value's encoding to `enc`.
    fn encode(&self, enc: &mut Encoder);
}

/// Types that can deserialize themselves from a [`Decoder`].
pub trait Decode: Sized {
    /// Reads a value from `dec`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the input is truncated or malformed.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError>;
}

macro_rules! impl_codec_primitive {
    ($ty:ty, $put:ident, $take:ident) => {
        impl Encode for $ty {
            fn encode(&self, enc: &mut Encoder) {
                enc.$put(*self);
            }
        }
        impl Decode for $ty {
            fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                dec.$take()
            }
        }
    };
}

impl_codec_primitive!(u8, put_u8, take_u8);
impl_codec_primitive!(u16, put_u16, take_u16);
impl_codec_primitive!(u32, put_u32, take_u32);
impl_codec_primitive!(u64, put_u64, take_u64);
impl_codec_primitive!(f64, put_f64, take_f64);

impl Encode for usize {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self as u64);
    }
}

impl Decode for usize {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let v = dec.take_u64()?;
        usize::try_from(v).map_err(|_| DecodeError::Invalid("usize overflow"))
    }
}

impl Encode for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Invalid("bool discriminant")),
        }
    }
}

impl Encode for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.len() as u32);
        enc.put_bytes(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = dec.take_u32()? as usize;
        let bytes = dec.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Utf8)
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.len() as u32);
        for item in self {
            item.encode(enc);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = dec.take_u32()? as usize;
        // Guard against absurd length prefixes in corrupt files without
        // over-allocating up front.
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_u8(0),
            Some(v) => {
                enc.put_u8(1);
                v.encode(enc);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            _ => Err(DecodeError::Invalid("option discriminant")),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<const N: usize> Encode for [u64; N] {
    fn encode(&self, enc: &mut Encoder) {
        for v in self {
            enc.put_u64(*v);
        }
    }
}

impl<const N: usize> Decode for [u64; N] {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let mut out = [0u64; N];
        for slot in &mut out {
            *slot = dec.take_u64()?;
        }
        Ok(out)
    }
}

/// Encodes `value` into a fresh byte vector.
pub fn to_bytes<T: Encode>(value: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    enc.into_bytes()
}

/// Decodes a `T` from `bytes`, requiring that all bytes are consumed.
///
/// # Errors
///
/// Returns a [`DecodeError`] when the input is truncated, malformed, or has
/// trailing bytes.
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut dec = Decoder::new(bytes);
    let value = T::decode(&mut dec)?;
    if !dec.is_exhausted() {
        return Err(DecodeError::Invalid("trailing bytes"));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut enc = Encoder::new();
        1u8.encode(&mut enc);
        2u16.encode(&mut enc);
        3u32.encode(&mut enc);
        4u64.encode(&mut enc);
        5usize.encode(&mut enc);
        true.encode(&mut enc);
        (-1.5f64).encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(u8::decode(&mut dec).unwrap(), 1);
        assert_eq!(u16::decode(&mut dec).unwrap(), 2);
        assert_eq!(u32::decode(&mut dec).unwrap(), 3);
        assert_eq!(u64::decode(&mut dec).unwrap(), 4);
        assert_eq!(usize::decode(&mut dec).unwrap(), 5);
        assert!(bool::decode(&mut dec).unwrap());
        assert_eq!(f64::decode(&mut dec).unwrap(), -1.5);
        assert!(dec.is_exhausted());
    }

    #[test]
    fn roundtrip_compound() {
        let value: (String, Vec<Option<u64>>) = ("abc".to_string(), vec![Some(1), None, Some(3)]);
        let bytes = to_bytes(&value);
        let back: (String, Vec<Option<u64>>) = from_bytes(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn roundtrip_u64_array() {
        let state = [1u64, 2, 3, 4];
        let bytes = to_bytes(&state);
        let back: [u64; 4] = from_bytes(&bytes).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = to_bytes(&12345u64);
        let err = from_bytes::<u64>(&bytes[..4]).unwrap_err();
        assert!(matches!(err, DecodeError::UnexpectedEnd { .. }));
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = to_bytes(&1u8);
        bytes.push(0xFF);
        assert_eq!(
            from_bytes::<u8>(&bytes).unwrap_err(),
            DecodeError::Invalid("trailing bytes")
        );
    }

    #[test]
    fn header_validation() {
        let enc = Encoder::with_header(0xC0FFEE00, 3);
        let bytes = enc.into_bytes();
        assert!(Decoder::with_header(&bytes, 0xC0FFEE00, 3).is_ok());
        assert!(matches!(
            Decoder::with_header(&bytes, 0xDEADBEEF, 3),
            Err(DecodeError::BadHeader { .. })
        ));
        assert!(Decoder::with_header(&bytes, 0xC0FFEE00, 4).is_err());
    }

    #[test]
    fn bad_bool_discriminant() {
        assert_eq!(
            from_bytes::<bool>(&[7]).unwrap_err(),
            DecodeError::Invalid("bool discriminant")
        );
    }

    #[test]
    fn display_impls_are_nonempty() {
        let errs = [
            DecodeError::UnexpectedEnd {
                needed: 8,
                remaining: 2,
            },
            DecodeError::Invalid("x"),
            DecodeError::BadHeader {
                expected: 1,
                found: 2,
            },
            DecodeError::Utf8,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    #[test]
    fn nested_collections_roundtrip() {
        let value: Vec<Vec<(u32, f64)>> = vec![vec![(1, 0.5), (2, 1.5)], vec![], vec![(9, -3.25)]];
        let bytes = to_bytes(&value);
        let back: Vec<Vec<(u32, f64)>> = from_bytes(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn f64_bit_patterns_preserved() {
        for v in [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            1e300,
        ] {
            let bytes = to_bytes(&v);
            let back: f64 = from_bytes(&bytes).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        // NaN keeps its payload bits too.
        let nan = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        let back: f64 = from_bytes(&to_bytes(&nan)).unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn empty_string_and_unicode() {
        for s in ["", "héllo wörld", "日本語", "a\0b"] {
            let bytes = to_bytes(&s.to_string());
            let back: String = from_bytes(&bytes).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn decoder_remaining_tracks_position() {
        let bytes = to_bytes(&(1u64, 2u64));
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.remaining(), 16);
        let _ = dec.take_u64().unwrap();
        assert_eq!(dec.remaining(), 8);
        let _ = dec.take_u64().unwrap();
        assert!(dec.is_exhausted());
    }
}

//! Reference-counted byte views for zero-copy artifact reads.
//!
//! Caches and artifact stores hand out payloads that were read from disk
//! (or built once in memory) to many consumers. Returning `Vec<u8>` from
//! every lookup copies the payload per hit; [`SharedBytes`] instead wraps
//! the buffer in an `Arc` and hands out cheaply cloneable *views*. A view
//! can be narrowed to a sub-range without copying, so a payload embedded
//! mid-file — after a header, before a checksum — is served as a window
//! over the single read buffer.

use std::fmt;
use std::ops::{Deref, Range};
use std::sync::Arc;

/// A cheaply cloneable, reference-counted byte view.
///
/// Cloning bumps a refcount; [`SharedBytes::slice`] narrows the view
/// without touching the underlying buffer. Equality and hashing compare
/// the viewed bytes, not buffer identity.
#[derive(Clone)]
pub struct SharedBytes {
    buf: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl SharedBytes {
    /// Wraps `bytes` in a view covering the whole buffer (takes ownership;
    /// no copy).
    pub fn new(bytes: Vec<u8>) -> Self {
        let len = bytes.len();
        Self {
            buf: bytes.into(),
            start: 0,
            len,
        }
    }

    /// An empty view.
    pub fn empty() -> Self {
        Self::new(Vec::new())
    }

    /// Narrows this view to `range` (relative to the view, not the
    /// underlying buffer) without copying.
    ///
    /// # Panics
    ///
    /// Panics when `range` exceeds the view, exactly like slice indexing.
    #[must_use]
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "range {range:?} out of bounds for a view of {} bytes",
            self.len
        );
        Self {
            buf: Arc::clone(&self.buf),
            start: self.start + range.start,
            len: range.end - range.start,
        }
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.start + self.len]
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies the viewed bytes into a fresh `Vec` (the one deliberate
    /// copy, for callers that need ownership).
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for SharedBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for SharedBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for SharedBytes {
    fn from(bytes: Vec<u8>) -> Self {
        Self::new(bytes)
    }
}

impl From<&[u8]> for SharedBytes {
    fn from(bytes: &[u8]) -> Self {
        Self::new(bytes.to_vec())
    }
}

impl PartialEq for SharedBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SharedBytes {}

impl PartialEq<[u8]> for SharedBytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for SharedBytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedBytes({} bytes)", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_share_the_buffer() {
        let view = SharedBytes::new(vec![1, 2, 3, 4, 5]);
        let clone = view.clone();
        assert_eq!(view, clone);
        assert_eq!(Arc::as_ptr(&view.buf), Arc::as_ptr(&clone.buf));
        assert_eq!(&*view, &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn slicing_narrows_without_copying() {
        let view = SharedBytes::new(vec![10, 20, 30, 40, 50]);
        let mid = view.slice(1..4);
        assert_eq!(&*mid, &[20, 30, 40]);
        assert_eq!(Arc::as_ptr(&view.buf), Arc::as_ptr(&mid.buf));
        // Slicing a slice composes offsets.
        let inner = mid.slice(1..2);
        assert_eq!(&*inner, &[30]);
        // Empty slices at the boundary are fine.
        assert!(view.slice(5..5).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_slice_panics() {
        let view = SharedBytes::new(vec![1, 2, 3]);
        let _ = view.slice(1..5);
    }

    #[test]
    fn equality_compares_content_not_identity() {
        let a = SharedBytes::new(vec![7, 8, 9]);
        let b = SharedBytes::from(&[7, 8, 9][..]);
        assert_eq!(a, b);
        assert_eq!(a, [7, 8, 9]);
        assert_ne!(a.slice(0..2), b);
        assert_eq!(a.to_vec(), vec![7, 8, 9]);
    }

    #[test]
    fn empty_view() {
        let view = SharedBytes::empty();
        assert!(view.is_empty());
        assert_eq!(view.len(), 0);
        assert_eq!(&*view, &[] as &[u8]);
    }
}

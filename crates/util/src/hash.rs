//! Content digests (FNV-1a).
//!
//! Pinballs embed a digest of the program specification they were captured
//! from; the replayer refuses to resume a checkpoint against a different
//! program. FNV-1a is sufficient for corruption/mismatch detection (this is
//! not a cryptographic boundary).

/// 64-bit FNV-1a streaming hasher.
///
/// # Example
///
/// ```
/// use sampsim_util::hash::Fnv64;
/// let mut h = Fnv64::new();
/// h.write(b"program");
/// h.write_u64(42);
/// let digest = h.finish();
/// assert_ne!(digest, Fnv64::new().finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Creates a hasher with the standard FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Feeds raw bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` (little-endian) into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds an `f64`'s bit pattern into the hash.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a string (length-prefixed) into the hash.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Returns the digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Convenience: digest of a single byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn order_sensitivity() {
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn str_prefix_disambiguates() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}

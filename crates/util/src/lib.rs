//! Foundation utilities shared by every `sampsim` crate.
//!
//! This crate deliberately has no external dependencies so that simulation
//! results are bit-stable across environments:
//!
//! * [`rng`] — deterministic pseudo-random number generators
//!   ([`rng::SplitMix64`], [`rng::Xoshiro256StarStar`]) used by the workload
//!   executor, the clustering seeder and the noise models.
//! * [`stats`] — streaming summary statistics and error metrics used when
//!   comparing sampled runs against whole runs.
//! * [`codec`] — a small, versioned binary serialization layer used for the
//!   on-disk pinball and artifact formats.
//! * [`bytes`] — reference-counted byte views ([`bytes::SharedBytes`]) for
//!   zero-copy artifact and cache reads.
//! * [`table`] — fixed-width ASCII table rendering for the benchmark harness
//!   (every paper table/figure is printed through this).
//! * [`plot`] — ASCII line charts for trend exhibits (Figs. 4 and 9).
//! * [`hash`] — FNV-1a hashing for content digests.
//! * [`prop`] — a minimal property-based testing harness (deterministic
//!   case generation, no external dependencies) used by the workspace
//!   test suites.
//! * [`scale`] — the global workload scaling knob described in DESIGN.md.
//!
//! # Example
//!
//! ```
//! use sampsim_util::rng::Xoshiro256StarStar;
//!
//! let mut a = Xoshiro256StarStar::seed_from_u64(42);
//! let mut b = Xoshiro256StarStar::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod codec;
pub mod hash;
pub mod json;
pub mod plot;
pub mod prop;
pub mod rng;
pub mod scale;
pub mod stats;
pub mod table;

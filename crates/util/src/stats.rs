//! Summary statistics and error metrics.
//!
//! The paper's evaluation is a long series of "sampled run vs whole run"
//! comparisons; this module centralizes the arithmetic so that every figure
//! reports errors the same way:
//!
//! * [`Summary`] — streaming mean/variance/min/max.
//! * [`pct_point_error`] — error between two percentages in *percentage
//!   points* (used for instruction-mix comparisons, Fig. 7).
//! * [`relative_error_pct`] — relative error in percent (used for miss-rate
//!   and CPI comparisons, Figs. 8, 9, 12).
//! * [`weighted_mean`] — weight-aware aggregation used when combining
//!   per-simulation-point statistics.

/// Streaming summary statistics (Welford's algorithm).
///
/// # Example
///
/// ```
/// use sampsim_util::stats::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] { s.add(x); }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; `0.0` when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `NaN` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation; `NaN` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// Absolute difference between two quantities expressed in the same unit
/// (typically percentage points).
///
/// ```
/// assert_eq!(sampsim_util::stats::pct_point_error(49.0, 50.0), 1.0);
/// ```
pub fn pct_point_error(measured: f64, reference: f64) -> f64 {
    (measured - reference).abs()
}

/// Relative error of `measured` against `reference`, in percent.
///
/// Returns `0.0` when both are zero, and `100.0 * measured.abs()` sign-safe
/// magnitude when only the reference is zero (avoids infinities in tables).
///
/// ```
/// assert!((sampsim_util::stats::relative_error_pct(1.1, 1.0) - 10.0).abs() < 1e-9);
/// ```
pub fn relative_error_pct(measured: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if measured == 0.0 {
            0.0
        } else {
            100.0 * measured.abs()
        }
    } else {
        100.0 * (measured - reference).abs() / reference.abs()
    }
}

/// Signed relative difference of `measured` against `reference`, in percent.
pub fn signed_relative_error_pct(measured: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if measured == 0.0 {
            0.0
        } else {
            100.0 * measured
        }
    } else {
        100.0 * (measured - reference) / reference.abs()
    }
}

/// Weighted arithmetic mean of `values` under `weights`.
///
/// # Panics
///
/// Panics if the slices differ in length or the weights sum to a
/// non-positive value.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(values.len(), weights.len(), "length mismatch");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    values.iter().zip(weights).map(|(v, w)| v * w).sum::<f64>() / total
}

/// Nearest-rank percentile of an unsorted sample (`p` in `[0, 100]`).
///
/// Sorts a copy of `values` and returns the smallest observation with at
/// least `p` percent of the sample at or below it — the convention used
/// by the serving-latency reports, where p50/p99 must be actual observed
/// latencies rather than interpolated values. Returns `NaN` for an empty
/// sample.
///
/// ```
/// use sampsim_util::stats::percentile;
/// let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
/// assert_eq!(percentile(&xs, 50.0), 3.0);
/// assert_eq!(percentile(&xs, 100.0), 5.0);
/// ```
///
/// # Panics
///
/// Panics when `p` is outside `[0, 100]` or any value is `NaN`.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile over NaN"));
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Ratio `a / b` guarding against a zero denominator (returns `0.0`).
pub fn safe_ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        0.0
    } else {
        a / b
    }
}

/// Formats a count with thousands separators (`1234567` → `"1,234,567"`).
pub fn with_commas(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.mean(), 5.0);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn summary_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all: Summary = xs.iter().copied().collect();
        let mut left: Summary = xs[..37].iter().copied().collect();
        let right: Summary = xs[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(relative_error_pct(0.0, 0.0), 0.0);
        assert_eq!(relative_error_pct(0.5, 0.0), 50.0);
        assert!((relative_error_pct(0.9, 1.0) - 10.0).abs() < 1e-12);
        assert!((signed_relative_error_pct(0.9, 1.0) + 10.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_basic() {
        assert_eq!(weighted_mean(&[1.0, 3.0], &[1.0, 1.0]), 2.0);
        assert_eq!(weighted_mean(&[1.0, 3.0], &[3.0, 1.0]), 1.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn weighted_mean_length_mismatch() {
        weighted_mean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 99.0), 99.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        // Unsorted input, tiny sample: every answer is an observed value.
        assert_eq!(percentile(&[9.0], 50.0), 9.0);
        assert_eq!(percentile(&[7.0, 3.0], 50.0), 3.0);
        assert_eq!(percentile(&[7.0, 3.0], 99.0), 7.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_rejects_bad_p() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn commas() {
        assert_eq!(with_commas(0), "0");
        assert_eq!(with_commas(999), "999");
        assert_eq!(with_commas(1000), "1,000");
        assert_eq!(with_commas(1234567), "1,234,567");
    }
}

//! A minimal JSON reader.
//!
//! The offline build has no JSON dependency, yet the perf harness and the
//! CI gate need to *validate* the reports the CLI emits, and `sampsim
//! serve` parses requests arriving over TCP (all sampsim JSON is produced
//! by hand-assembled writers). This module parses the full JSON grammar
//! into a [`Value`] tree — enough to check a schema, not a serde
//! replacement: numbers are `f64` and objects keep insertion order.
//!
//! Because the server feeds it *untrusted network input*, the parser is
//! hardened beyond what the trusted report-validation path needs:
//!
//! * nesting is capped at [`MAX_DEPTH`] levels (a recursive-descent parser
//!   must bound recursion or a hostile `[[[[…` overflows the stack),
//! * anything after the top-level value except whitespace is rejected,
//! * `\uD800`–`\uDFFF` escapes must form a valid surrogate pair, which is
//!   decoded to the real code point; lone surrogates are an error rather
//!   than a silent U+FFFD.

use std::fmt;

/// Maximum container nesting the parser accepts. Documents deeper than
/// this fail with a [`JsonError`] instead of recursing unboundedly.
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the error was detected at.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (one value plus trailing whitespace).
///
/// # Errors
///
/// Returns a [`JsonError`] with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    /// Bounds container recursion. Errors abort the whole parse, so the
    /// matching decrement only happens on success paths.
    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so slicing on
                    // the next boundary is safe).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    /// Reads the 4 hex digits of a `\u` escape (the `\u` itself already
    /// consumed).
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    /// Decodes one `\u` escape, pairing UTF-16 surrogates into the real
    /// code point. Lone or inverted surrogates are rejected — untrusted
    /// input must not smuggle replacement characters past a schema check.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let code = self.hex4()?;
        match code {
            0xD800..=0xDBFF => {
                if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                    self.pos += 2;
                    let low = self.hex4()?;
                    if !(0xDC00..=0xDFFF).contains(&low) {
                        return Err(self.err("high surrogate not followed by a low surrogate"));
                    }
                    let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                    Ok(char::from_u32(combined).expect("paired surrogates form a valid scalar"))
                } else {
                    Err(self.err("unpaired high surrogate"))
                }
            }
            0xDC00..=0xDFFF => Err(self.err("unpaired low surrogate")),
            _ => Ok(char::from_u32(code).expect("non-surrogate BMP code point")),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}, "x"], "c": {"d": 2.5}}"#).unwrap();
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(2.5));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b"), Some(&Value::Null));
        assert_eq!(arr[2].as_str(), Some("x"));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\n\t\"\\Aü""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\Aü"));
        assert_eq!(parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn surrogate_pairs_decode_to_the_real_code_point() {
        // U+1D11E MUSICAL SYMBOL G CLEF as a UTF-16 surrogate pair.
        assert_eq!(parse(r#""𝄞""#).unwrap().as_str(), Some("𝄞"));
        // Lowercase hex digits are fine too.
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn lone_surrogates_are_rejected_not_replaced() {
        for bad in [
            r#""\uD834""#,       // high surrogate at end of string
            r#""\uD834x""#,      // high surrogate followed by a literal
            r#""\uD834\n""#,     // high surrogate followed by another escape
            r#""\uDD1E""#,       // low surrogate first
            r#""\uD834\uD834""#, // two high surrogates
            r#""\uD834A""#,      // high surrogate + trailing hex-looking literal
        ] {
            let err = parse(bad).unwrap_err();
            assert!(err.message.contains("surrogate"), "{bad}: {err}");
        }
    }

    #[test]
    fn depth_limit_bounds_recursion() {
        let deep = |n: usize| format!("{}0{}", "[".repeat(n), "]".repeat(n));
        assert!(parse(&deep(MAX_DEPTH)).is_ok());
        let err = parse(&deep(MAX_DEPTH + 1)).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Objects count against the same budget, and a hostile prefix with
        // no closers at all must fail too (the overflow happens on the way
        // down, before any closer is reached).
        let bomb = "[{\"k\":".repeat(MAX_DEPTH);
        assert!(parse(&bomb).unwrap_err().message.contains("nesting"));
        // Sibling containers do not accumulate depth.
        let wide = format!("[{}0]", "[1],".repeat(1_000));
        assert!(parse(&wide).is_ok());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        for bad in ["{} {}", "1 1", "null,", "[1] x", "\"a\"\"b\"", "{}\u{0}"] {
            let err = parse(bad).unwrap_err();
            assert!(err.message.contains("trailing"), "{bad:?}: {err}");
        }
        // Trailing whitespace (including newlines) is fine.
        assert!(parse("{}  \n\t\r\n").is_ok());
    }

    #[test]
    fn object_preserves_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        match v {
            Value::Object(fields) => {
                assert_eq!(fields[0].0, "z");
                assert_eq!(fields[1].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1 2",
            "\"unterminated",
            "{'a': 1}",
            "[1,]nope",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
        let err = parse("[1, }").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn roundtrips_cli_style_floats() {
        // The CLI prints floats with Rust's shortest-round-trip `{:?}`.
        let v = parse("[0.028541666666666667, 1e-12, 100.0]").unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(0.028541666666666667));
        assert_eq!(arr[1].as_f64(), Some(1e-12));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(vec![]));
    }
}

/// Seeded property tests on the untrusted-input hardening, driven by the
/// in-repo [`crate::prop`] harness.
#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::prop::{run_cases, Gen};
    use std::fmt::Write;

    /// Renders a [`Value`] back to JSON text (floats via `{:?}`, the
    /// shortest round-trip form all sampsim writers use).
    fn render(v: &Value, out: &mut String) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Number(n) => {
                let _ = write!(out, "{n:?}");
            }
            Value::String(s) => render_str(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render(item, out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, val)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    render(val, out);
                }
                out.push('}');
            }
        }
    }

    fn render_str(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// A random scalar-or-container tree of bounded depth.
    fn arb_value(g: &mut Gen, depth: usize) -> Value {
        let pick = g.usize_in(0..if depth == 0 { 4 } else { 6 });
        match pick {
            0 => Value::Null,
            1 => Value::Bool(g.chance(0.5)),
            // Integral and fractional numbers; `{:?}` round-trips both.
            2 => Value::Number(g.f64_in(-1e9..1e9)),
            3 => Value::String(arb_string(g)),
            4 => Value::Array(g.vec_of(0..4, |g| arb_value(g, depth - 1))),
            _ => Value::Object(g.vec_of(0..4, |g| (arb_string(g), arb_value(g, depth - 1)))),
        }
    }

    fn arb_string(g: &mut Gen) -> String {
        let v = g.vec_of(0..8, |g| match g.usize_in(0..5) {
            0 => '"',
            1 => '\\',
            2 => '\n',
            3 => char::from_u32(g.u64_in(0x20..0x7F) as u32).unwrap(),
            // Astral-plane characters exercise the surrogate-pair path
            // when escaped and the raw UTF-8 path when not.
            _ => char::from_u32(g.u64_in(0x1_0000..0x1_1000) as u32).unwrap(),
        });
        v.into_iter().collect()
    }

    #[test]
    fn arbitrary_documents_roundtrip() {
        run_cases("json-roundtrip", 128, |g| {
            let v = arb_value(g, 3);
            let mut text = String::new();
            render(&v, &mut text);
            let back = parse(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(back, v, "{text}");
        });
    }

    #[test]
    fn escaped_astral_code_points_roundtrip_via_surrogate_pairs() {
        run_cases("json-surrogate-pairs", 128, |g| {
            let code = g.u64_in(0x1_0000..0x11_0000) as u32;
            let c = char::from_u32(code).expect("astral scalar");
            let units: Vec<u16> = c.encode_utf16(&mut [0u16; 2]).to_vec();
            let text = format!("\"\\u{:04x}\\u{:04x}\"", units[0], units[1]);
            let parsed = parse(&text).unwrap();
            assert_eq!(parsed.as_str(), Some(c.to_string().as_str()), "{text}");
            // The same pair in the wrong order must be rejected.
            let swapped = format!("\"\\u{:04x}\\u{:04x}\"", units[1], units[0]);
            assert!(parse(&swapped).is_err(), "{swapped}");
        });
    }

    #[test]
    fn random_depths_respect_the_limit() {
        run_cases("json-depth-limit", 32, |g| {
            let n = g.usize_in(1..2 * MAX_DEPTH);
            let doc = format!("{}1{}", "[".repeat(n), "]".repeat(n));
            assert_eq!(parse(&doc).is_ok(), n <= MAX_DEPTH, "depth {n}");
        });
    }

    #[test]
    fn random_trailing_garbage_is_rejected() {
        run_cases("json-trailing-garbage", 64, |g| {
            let v = arb_value(g, 2);
            let mut text = String::new();
            render(&v, &mut text);
            let garbage = match g.usize_in(0..4) {
                0 => "x",
                1 => "{}",
                2 => "]",
                _ => "\u{1}",
            };
            let doc = format!("{text} {garbage}");
            assert!(parse(&doc).is_err(), "{doc:?}");
        });
    }
}

//! A minimal JSON reader.
//!
//! The offline build has no JSON dependency, yet the perf harness and the
//! CI gate need to *validate* the reports the CLI emits (all sampsim JSON
//! is produced by hand-assembled writers). This module parses the full
//! JSON grammar into a [`Value`] tree — enough to check a schema, not a
//! serde replacement: numbers are `f64`, objects keep insertion order, and
//! escape handling covers the sequences our writers emit.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the error was detected at.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (one value plus trailing whitespace).
///
/// # Errors
///
/// Returns a [`JsonError`] with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not paired up — our writers
                            // never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so slicing on
                    // the next boundary is safe).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}, "x"], "c": {"d": 2.5}}"#).unwrap();
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(2.5));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b"), Some(&Value::Null));
        assert_eq!(arr[2].as_str(), Some("x"));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\n\t\"\\Aü""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\Aü"));
    }

    #[test]
    fn object_preserves_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        match v {
            Value::Object(fields) => {
                assert_eq!(fields[0].0, "z");
                assert_eq!(fields[1].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1 2",
            "\"unterminated",
            "{'a': 1}",
            "[1,]nope",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
        let err = parse("[1, }").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn roundtrips_cli_style_floats() {
        // The CLI prints floats with Rust's shortest-round-trip `{:?}`.
        let v = parse("[0.028541666666666667, 1e-12, 100.0]").unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(0.028541666666666667));
        assert_eq!(arr[1].as_f64(), Some(1e-12));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(vec![]));
    }
}

//! Deterministic pseudo-random number generation.
//!
//! Simulation results must be reproducible bit-for-bit across machines and
//! across versions of third-party crates, so the simulator cores use these
//! in-crate generators rather than the `rand` crate. Both generators are
//! tiny-state, cheaply cloneable (their state is captured inside pinball
//! checkpoints) and pass practical statistical tests for this use case.

/// SplitMix64 generator (Steele, Lea, Flood; JDK 8 `SplittableRandom`).
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256StarStar`], and directly wherever a small, fast stream of
/// independent values is needed.
///
/// # Example
///
/// ```
/// use sampsim_util::rng::SplitMix64;
/// let mut rng = SplitMix64::new(7);
/// let x = rng.next_u64();
/// let y = rng.next_u64();
/// assert_ne!(x, y);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the raw state (for checkpointing).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Restores a generator from a previously captured state.
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }
}

/// xoshiro256** 1.0 generator (Blackman & Vigna).
///
/// The workhorse generator of the workload executor and noise models: fast,
/// 256 bits of state, equidistributed in 64-bit outputs.
///
/// # Example
///
/// ```
/// use sampsim_util::rng::Xoshiro256StarStar;
/// let mut rng = Xoshiro256StarStar::seed_from_u64(1);
/// let v: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
/// assert_eq!(v.len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the generator by expanding `seed` with [`SplitMix64`], as
    /// recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is the one invalid state; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Returns the next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses the widening-multiply technique (Lemire); for simulation use the
    /// tiny modulo bias of the fast path is irrelevant, so no rejection loop
    /// is performed.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns the raw 256-bit state (for checkpointing).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Restores a generator from a previously captured state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is all zeros (the single invalid xoshiro state).
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(state != [0, 0, 0, 0], "all-zero xoshiro state is invalid");
        Self { s: state }
    }

    /// Draws an index in `[0, weights.len())` with probability proportional
    /// to `weights[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C source.
        let mut rng = SplitMix64::new(1234567);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_ne!(first, second);
        // Determinism against itself.
        let mut rng2 = SplitMix64::new(1234567);
        assert_eq!(rng2.next_u64(), first);
        assert_eq!(rng2.next_u64(), second);
    }

    #[test]
    fn xoshiro_deterministic_and_restorable() {
        let mut a = Xoshiro256StarStar::seed_from_u64(99);
        for _ in 0..10 {
            a.next_u64();
        }
        let saved = a.state();
        let tail: Vec<u64> = (0..5).map(|_| a.next_u64()).collect();
        let mut b = Xoshiro256StarStar::from_state(saved);
        let tail2: Vec<u64> = (0..5).map(|_| b.next_u64()).collect();
        assert_eq!(tail, tail2);
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        for bound in [1u64, 2, 7, 100, 1 << 40] {
            for _ in 0..100 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_f64_is_roughly_uniform() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        let weights = [0.1, 0.0, 0.9];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Xoshiro256StarStar::seed_from_u64(1).next_below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}

//! The global workload scaling knob.
//!
//! DESIGN.md §2 scales the paper's instruction counts by 1/3000 while
//! preserving every ratio. [`Scale`] applies a *further* multiplicative
//! factor on top of that baseline so the same experiment definitions can run
//! at full fidelity (benchmark harness), reduced fidelity (examples) or as a
//! smoke test (unit/integration tests) without changing any code.
//!
//! The factor can come from the `SAMPSIM_SCALE` environment variable
//! (`Scale::from_env`), which the benchmark binaries honour.

/// A multiplicative scaling factor applied to workload sizes.
///
/// # Example
///
/// ```
/// use sampsim_util::scale::Scale;
/// let s = Scale::new(0.5);
/// assert_eq!(s.apply(10_000), 5_000);
/// assert_eq!(Scale::FULL.apply(10_000), 10_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    factor: f64,
}

impl Scale {
    /// Full paper-calibrated scale (factor 1.0).
    pub const FULL: Scale = Scale { factor: 1.0 };

    /// Tiny scale for unit and integration tests.
    pub const TEST: Scale = Scale { factor: 0.01 };

    /// Creates a scale with the given factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn new(factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be finite and positive, got {factor}"
        );
        Self { factor }
    }

    /// Reads `SAMPSIM_SCALE` from the environment, defaulting to 1.0.
    ///
    /// Invalid values are ignored (full scale is used) rather than aborting a
    /// long benchmark run.
    pub fn from_env() -> Self {
        match std::env::var("SAMPSIM_SCALE") {
            Ok(s) => match s.trim().parse::<f64>() {
                Ok(f) if f.is_finite() && f > 0.0 => Scale::new(f),
                _ => Scale::FULL,
            },
            Err(_) => Scale::FULL,
        }
    }

    /// The raw factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// Scales a count, never returning less than 1.
    pub fn apply(&self, count: u64) -> u64 {
        ((count as f64 * self.factor).round() as u64).max(1)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::FULL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_rounds_and_floors() {
        assert_eq!(Scale::new(0.001).apply(100), 1); // floor at 1
        assert_eq!(Scale::new(0.5).apply(3), 2); // 1.5 rounds to 2
        assert_eq!(Scale::new(2.0).apply(10), 20);
    }

    #[test]
    #[should_panic(expected = "scale factor must be finite and positive")]
    fn zero_factor_panics() {
        Scale::new(0.0);
    }

    #[test]
    fn test_scale_is_small() {
        assert!(Scale::TEST.factor() < 0.1);
    }
}

//! Rule/doc drift oracle: the rule registry (`Rule::ALL`) and the
//! human catalogue (`docs/lint-rules.md`) must describe the same set of
//! rules, in both directions.
//!
//! - Every registered rule needs a `| SAxxx |` table row in the doc, so
//!   a rule added in code without documentation fails here.
//! - Every `SAxxx` id mentioned anywhere in the doc must resolve through
//!   `Rule::from_code`, so a rule deleted or renamed in code leaves no
//!   stale documentation behind. Range headings like `SA001–SA014` are
//!   expanded endpoint-by-endpoint, so both ends must exist.

use sampsim_analyze::Rule;
use std::collections::BTreeSet;

fn doc_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/lint-rules.md");
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// All `SA` + 3-digit ids appearing anywhere in `text`, deduplicated.
fn mentioned_ids(text: &str) -> BTreeSet<String> {
    let bytes = text.as_bytes();
    let mut ids = BTreeSet::new();
    for start in 0..bytes.len().saturating_sub(4) {
        if &bytes[start..start + 2] == b"SA"
            && bytes[start + 2..start + 5]
                .iter()
                .all(|b| b.is_ascii_digit())
            // Reject longer runs of digits (e.g. an SA-prefixed issue
            // number) — rule codes are exactly three digits.
            && bytes.get(start + 5).is_none_or(|b| !b.is_ascii_digit())
        {
            ids.insert(text[start..start + 5].to_string());
        }
    }
    ids
}

#[test]
fn every_registered_rule_has_a_table_row() {
    let doc = doc_text();
    let missing: Vec<&str> = Rule::ALL
        .iter()
        .map(|r| r.code())
        .filter(|code| !doc.contains(&format!("| {code} |")))
        .collect();
    assert!(
        missing.is_empty(),
        "rules registered in sampsim_analyze::Rule but absent from the \
         docs/lint-rules.md tables: {missing:?}"
    );
}

#[test]
fn every_documented_id_resolves_in_the_registry() {
    let doc = doc_text();
    let ids = mentioned_ids(&doc);
    assert!(
        ids.len() >= Rule::ALL.len(),
        "the doc mentions fewer distinct SA ids ({}) than there are \
         registered rules ({})",
        ids.len(),
        Rule::ALL.len()
    );
    let stale: Vec<String> = ids
        .into_iter()
        .filter(|id| Rule::from_code(id).is_none())
        // SA999 is the catalogue's canonical "no such rule" example.
        .filter(|id| id != "SA999")
        .collect();
    assert!(
        stale.is_empty(),
        "SA ids mentioned in docs/lint-rules.md that no longer resolve \
         via Rule::from_code: {stale:?}"
    );
}

#[test]
fn table_rows_agree_with_registered_severities() {
    // Each `| SAxxx | severity |` row must state the severity the
    // registry assigns, so a severity change in code cannot leave the
    // catalogue describing the old exit-code behaviour.
    let doc = doc_text();
    for line in doc.lines() {
        let mut cells = line.split('|').map(str::trim);
        let Some(code) = cells.nth(1) else { continue };
        let Some(rule) = Rule::from_code(code) else {
            continue;
        };
        let documented = cells.next().unwrap_or_default();
        let registered = format!("{:?}", rule.severity()).to_lowercase();
        assert_eq!(
            documented, registered,
            "docs/lint-rules.md documents {code} as '{documented}' but \
             the registry says '{registered}'"
        );
    }
}

//! Per-rule fixtures: every `SA0xx` rule has one triggering fixture and
//! one clean counterpart, plus a golden test of the JSON renderer shape.

use sampsim_analyze::{
    audit_bbvs, audit_regions, audit_simpoints, lint_hierarchy, lint_program, lint_program_parts,
    lint_sampling_config, lint_simpoint_options, render_json_lines, Diagnostic, Location, Report,
    Rule, SamplingConfig,
};
use sampsim_cache::{configs, HierarchyConfig};
use sampsim_pinball::RegionalPinball;
use sampsim_simpoint::bbv::Bbv;
use sampsim_simpoint::{SimPoint, SimPointOptions, SimPointsResult};
use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};
use sampsim_workload::{
    AddressPattern, BasicBlock, Cursor, InstKind, MemRegion, Phase, Program, Schedule, Segment,
    StaticInst, StreamSpec,
};

// ---------------------------------------------------------------- helpers

fn alu_block(pc: u64) -> BasicBlock {
    BasicBlock {
        insts: vec![
            StaticInst {
                kind: InstKind::Alu,
            },
            StaticInst {
                kind: InstKind::Alu,
            },
            StaticInst {
                kind: InstKind::Branch { bias: 32_768 },
            },
        ],
        pc,
    }
}

fn mem_block(pc: u64, stream: u16) -> BasicBlock {
    BasicBlock {
        insts: vec![
            StaticInst {
                kind: InstKind::Load { stream },
            },
            StaticInst {
                kind: InstKind::Branch { bias: 32_768 },
            },
        ],
        pc,
    }
}

fn stream(base: u64, size: u64) -> StreamSpec {
    StreamSpec {
        region: MemRegion { base, size },
        pattern: AddressPattern::Stride { stride: 64 },
    }
}

fn phase(blocks: Vec<u32>) -> Phase {
    let weights = vec![1.0; blocks.len()];
    Phase {
        blocks,
        block_weights: weights,
        streams: Vec::new(),
        stream_base: 0,
        selection_noise: 0.1,
    }
}

fn schedule(phases: &[u32]) -> Schedule {
    Schedule::new(
        phases
            .iter()
            .map(|&p| Segment {
                phase: p,
                insts: 1_000,
            })
            .collect(),
    )
}

/// A minimal structurally valid (blocks, phases, schedule) triple.
fn clean_parts() -> (Vec<BasicBlock>, Vec<Phase>, Schedule) {
    (
        vec![alu_block(0x1000)],
        vec![phase(vec![0])],
        schedule(&[0]),
    )
}

fn lint_parts(blocks: &[BasicBlock], phases: &[Phase], sched: &Schedule) -> Report {
    lint_program_parts("fixture", blocks, phases, sched)
}

fn built_program() -> Program {
    WorkloadSpec::builder("audit-fixture", 7)
        .total_insts(100_000)
        .phase(PhaseSpec::balanced(1.0))
        .build()
        .build()
}

fn region(program: &Program, slice_index: u64, length: u64, weight: f64) -> RegionalPinball {
    let mut cursor = Cursor::start(program);
    cursor.retired = slice_index * length;
    RegionalPinball::new(
        program,
        slice_index,
        cursor,
        length,
        weight,
        slice_index as u32,
    )
}

fn simpoints_result() -> SimPointsResult {
    SimPointsResult {
        k: 2,
        slice_size: 1_000,
        assignments: vec![0, 1, 0, 1],
        points: vec![
            SimPoint {
                slice: 0,
                cluster: 0,
                weight: 0.5,
            },
            SimPoint {
                slice: 1,
                cluster: 1,
                weight: 0.5,
            },
        ],
        bic_scores: vec![(1, 0.5), (2, 1.0)],
        avg_variance: 0.1,
    }
}

// ---------------------------------------------------------- workload rules

#[test]
fn clean_parts_have_no_findings() {
    let (blocks, phases, sched) = clean_parts();
    let report = lint_parts(&blocks, &phases, &sched);
    assert!(report.is_empty(), "{:?}", report.diagnostics());
}

#[test]
fn sa001_dangling_block_ref() {
    let (blocks, mut phases, sched) = clean_parts();
    phases[0].blocks = vec![0, 7];
    phases[0].block_weights = vec![1.0, 1.0];
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::DanglingBlockRef));
}

#[test]
fn sa002_dangling_phase_ref() {
    let (blocks, phases, _) = clean_parts();
    let sched = schedule(&[0, 3]);
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::DanglingPhaseRef));
}

#[test]
fn sa003_unreachable_phase() {
    let (blocks, mut phases, sched) = clean_parts();
    phases.push(phase(vec![0])); // phase 1 never scheduled
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::UnreachablePhase));
}

#[test]
fn sa004_empty_phase() {
    let (blocks, mut phases, sched) = clean_parts();
    phases[0].blocks.clear();
    phases[0].block_weights.clear();
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::EmptyPhase));
}

#[test]
fn sa005_bad_block_weights() {
    let (blocks, mut phases, sched) = clean_parts();
    phases[0].block_weights = vec![1.0, 2.0]; // length mismatch
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::BadBlockWeights));
    phases[0].block_weights = vec![-1.0]; // non-positive
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::BadBlockWeights));
    phases[0].block_weights = vec![f64::NAN];
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::BadBlockWeights));
}

#[test]
fn sa006_bad_selection_noise() {
    let (blocks, mut phases, sched) = clean_parts();
    phases[0].selection_noise = 1.5;
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::BadSelectionNoise));
}

#[test]
fn sa007_dangling_stream_ref() {
    let (_, mut phases, sched) = clean_parts();
    let blocks = vec![mem_block(0x1000, 2)]; // stream 2 of 1
    phases[0].streams = vec![stream(0x1_0000, 4096)];
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::DanglingStreamRef));
    // Clean counterpart: stream 0 exists.
    let blocks = vec![mem_block(0x1000, 0)];
    assert!(lint_parts(&blocks, &phases, &sched).is_empty());
}

#[test]
fn sa008_overlapping_stream_regions() {
    let (_, mut phases, sched) = clean_parts();
    let blocks = vec![mem_block(0x1000, 0)];
    phases[0].streams = vec![stream(0x1_0000, 4096), stream(0x1_0800, 4096)];
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::OverlappingStreamRegions));
    // Adjacent-but-disjoint regions are fine.
    phases[0].streams = vec![stream(0x1_0000, 4096), stream(0x1_1000, 4096)];
    assert!(!lint_parts(&blocks, &phases, &sched).fired(Rule::OverlappingStreamRegions));
}

#[test]
fn sa009_empty_schedule() {
    let (blocks, mut phases, _) = clean_parts();
    let sched = Schedule::new(Vec::new());
    phases[0].blocks = vec![0];
    let report = lint_parts(&blocks, &phases, &sched);
    assert!(report.fired(Rule::EmptySchedule));
}

#[test]
fn sa010_empty_block() {
    let (mut blocks, phases, sched) = clean_parts();
    blocks.push(BasicBlock {
        insts: Vec::new(),
        pc: 0x2000,
    });
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::EmptyBlock));
}

#[test]
fn sa011_stream_base_mismatch() {
    let (_, mut phases, _) = clean_parts();
    let blocks = vec![mem_block(0x1000, 0)];
    let sched = schedule(&[0, 1]);
    phases[0].streams = vec![stream(0x1_0000, 4096)];
    let mut second = phase(vec![0]);
    second.stream_base = 5; // should be 1 (phase 0 owns one stream)
    phases.push(second);
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::StreamBaseMismatch));
    phases[1].stream_base = 1;
    assert!(!lint_parts(&blocks, &phases, &sched).fired(Rule::StreamBaseMismatch));
}

#[test]
fn sa012_zero_size_region() {
    let (_, mut phases, sched) = clean_parts();
    let blocks = vec![mem_block(0x1000, 0)];
    phases[0].streams = vec![stream(0x1_0000, 0)];
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::ZeroSizeRegion));
}

#[test]
fn built_suite_program_is_clean() {
    assert!(lint_program(&built_program()).is_empty());
}

// ------------------------------------------------------------ config rules

fn config_with<'a>(simpoint: &'a SimPointOptions) -> SamplingConfig<'a> {
    SamplingConfig {
        slice_size: 10_000,
        warmup_slices: 48,
        simpoint,
        profile_cache: None,
        expected_slices: Some(1_000),
    }
}

#[test]
fn default_config_is_clean() {
    let options = SimPointOptions::default();
    assert!(lint_sampling_config(&config_with(&options)).is_empty());
}

#[test]
fn sa020_zero_slice_size() {
    let options = SimPointOptions::default();
    let mut config = config_with(&options);
    config.slice_size = 0;
    assert!(lint_sampling_config(&config).fired(Rule::ZeroSliceSize));
}

#[test]
fn sa021_bad_max_k() {
    let options = SimPointOptions {
        max_k: 0,
        ..Default::default()
    };
    assert!(lint_simpoint_options(&options).fired(Rule::BadMaxK));
}

#[test]
fn sa022_max_k_exceeds_slices() {
    let options = SimPointOptions::default();
    let mut config = config_with(&options);
    config.expected_slices = Some(10); // MaxK 35 >= 10 slices
    assert!(lint_sampling_config(&config).fired(Rule::MaxKExceedsSlices));
}

#[test]
fn sa023_bad_projection_dim() {
    let options = SimPointOptions {
        dim: 0,
        ..Default::default()
    };
    assert!(lint_simpoint_options(&options).fired(Rule::BadProjectionDim));
}

#[test]
fn sa024_zero_init() {
    let options = SimPointOptions {
        n_init: 0,
        ..Default::default()
    };
    assert!(lint_simpoint_options(&options).fired(Rule::ZeroInit));
}

#[test]
fn sa025_zero_max_iter() {
    let options = SimPointOptions {
        max_iter: 0,
        ..Default::default()
    };
    assert!(lint_simpoint_options(&options).fired(Rule::ZeroMaxIter));
}

#[test]
fn sa026_bad_bic_threshold() {
    let options = SimPointOptions {
        bic_threshold: 1.5,
        ..Default::default()
    };
    assert!(lint_simpoint_options(&options).fired(Rule::BadBicThreshold));
}

#[test]
fn sa027_zero_sample_size() {
    let options = SimPointOptions {
        sample_size: 0,
        ..Default::default()
    };
    assert!(lint_simpoint_options(&options).fired(Rule::ZeroSampleSize));
}

#[test]
fn sa028_excessive_warmup() {
    let options = SimPointOptions::default();
    let mut config = config_with(&options);
    config.warmup_slices = 1_000; // covers the whole 1000-slice run
    assert!(lint_sampling_config(&config).fired(Rule::ExcessiveWarmup));
}

// ------------------------------------------------------- hierarchy rules

fn hierarchy() -> HierarchyConfig {
    configs::allcache_table1()
}

#[test]
fn paper_hierarchies_are_clean() {
    for h in [configs::allcache_table1(), configs::i7_table3()] {
        assert!(lint_hierarchy(&h, "cache").is_empty());
    }
}

#[test]
fn sa030_line_not_pow2() {
    let mut h = hierarchy();
    h.l1d.line_bytes = 48;
    assert!(lint_hierarchy(&h, "cache").fired(Rule::LineNotPow2));
}

#[test]
fn sa031_bad_cache_geometry() {
    let mut h = hierarchy();
    h.l2.ways = 0;
    assert!(lint_hierarchy(&h, "cache").fired(Rule::BadCacheGeometry));
    let mut h = hierarchy();
    h.l3.size_bytes += 1; // no longer a multiple of ways * line
    assert!(lint_hierarchy(&h, "cache").fired(Rule::BadCacheGeometry));
}

#[test]
fn sa032_latency_inversion() {
    let mut h = hierarchy();
    h.l2.latency = h.l3.latency + 10;
    assert!(lint_hierarchy(&h, "cache").fired(Rule::LatencyInversion));
}

#[test]
fn sa033_line_size_mismatch() {
    let mut h = hierarchy();
    h.l1d.line_bytes = 128;
    h.l1d.size_bytes = 32 * 1024; // keep the geometry valid: 32K/8/128 = 32 sets
    assert!(lint_hierarchy(&h, "cache").fired(Rule::LineSizeMismatch));
}

#[test]
fn sa034_bad_tlb() {
    let mut h = hierarchy();
    h.dtlb.entries = 0;
    assert!(lint_hierarchy(&h, "cache").fired(Rule::BadTlb));
    let mut h = hierarchy();
    h.itlb.page_bytes = 5_000;
    assert!(lint_hierarchy(&h, "cache").fired(Rule::BadTlb));
}

// ------------------------------------------------------- artifact rules

#[test]
fn valid_artifacts_are_clean() {
    assert!(audit_simpoints(&simpoints_result(), "fixture").is_empty());
    let program = built_program();
    let regions = vec![region(&program, 2, 1_000, 1.0)];
    assert!(audit_regions(&regions, &program, "fixture").is_empty());
    let bbvs = vec![Bbv::from_counts(vec![(0, 10), (3, 5)])];
    assert!(audit_bbvs(&bbvs, 4, "fixture").is_empty());
}

#[test]
fn sa040_weight_sum_drift() {
    let mut r = simpoints_result();
    r.points[0].weight = 0.25; // sums to 0.75
    assert!(audit_simpoints(&r, "fixture").fired(Rule::WeightSumDrift));
}

#[test]
fn sa041_bad_weight() {
    let mut r = simpoints_result();
    r.points[0].weight = -0.5;
    r.points[1].weight = 1.5;
    assert!(audit_simpoints(&r, "fixture").fired(Rule::BadWeight));
}

#[test]
fn sa042_point_out_of_range() {
    let mut r = simpoints_result();
    r.points[1].slice = 99; // only 4 slices
    assert!(audit_simpoints(&r, "fixture").fired(Rule::PointOutOfRange));
}

#[test]
fn sa043_bad_assignment() {
    let mut r = simpoints_result();
    r.assignments[2] = 9; // outside k = 2
    assert!(audit_simpoints(&r, "fixture").fired(Rule::BadAssignment));
    let mut r = simpoints_result();
    r.points[0].cluster = 5;
    assert!(audit_simpoints(&r, "fixture").fired(Rule::BadAssignment));
}

#[test]
fn sa044_empty_cluster() {
    let mut r = simpoints_result();
    r.assignments = vec![0, 0, 0, 0]; // cluster 1 empty
    assert!(audit_simpoints(&r, "fixture").fired(Rule::EmptyCluster));
}

#[test]
fn sa045_bbv_dim_mismatch() {
    let bbvs = vec![Bbv::from_counts(vec![(9, 10)])];
    assert!(audit_bbvs(&bbvs, 4, "fixture").fired(Rule::BbvDimMismatch));
}

#[test]
fn sa046_empty_bbv() {
    let bbvs = vec![Bbv::from_counts(Vec::new())];
    assert!(audit_bbvs(&bbvs, 4, "fixture").fired(Rule::EmptyBbv));
}

#[test]
fn sa047_digest_mismatch() {
    let program = built_program();
    let mut pb = region(&program, 2, 1_000, 1.0);
    pb.program_digest ^= 0xBAD;
    assert!(audit_regions(&[pb], &program, "fixture").fired(Rule::DigestMismatch));
}

#[test]
fn sa048_misaligned_region() {
    let program = built_program();
    let mut pb = region(&program, 2, 1_000, 1.0);
    pb.start.retired = 2_500; // not slice-aligned
    assert!(audit_regions(&[pb], &program, "fixture").fired(Rule::MisalignedRegion));
    // Beyond the program end.
    let mut pb = region(&program, 2, 1_000, 1.0);
    pb.slice_index = 200; // 200 * 1000 > 100 000 total
    pb.start.retired = 200_000;
    assert!(audit_regions(&[pb], &program, "fixture").fired(Rule::MisalignedRegion));
}

#[test]
fn sa049_duplicate_points() {
    let program = built_program();
    let regions = vec![
        region(&program, 2, 1_000, 0.5),
        region(&program, 2, 1_000, 0.5),
    ];
    assert!(audit_regions(&regions, &program, "fixture").fired(Rule::DuplicatePoints));
    let mut r = simpoints_result();
    r.points[1].slice = 0; // duplicate slice among points
    assert!(audit_simpoints(&r, "fixture").fired(Rule::DuplicatePoints));
}

// --------------------------------------------------------------- renderer

#[test]
fn json_renderer_golden_shape() {
    let mut report = Report::new();
    report.push(Diagnostic::new(
        Rule::DanglingBlockRef,
        Location::workload_item("505.mcf_r", "phase 3"),
        "phase 3 references block 9, but the program has 4 block(s)",
    ));
    report.push(Diagnostic::new(
        Rule::ZeroSliceSize,
        Location::config("slice_size"),
        "slice_size is 0",
    ));
    report.push(Diagnostic::new(
        Rule::DigestMismatch,
        Location::artifact("out/505.mcf_r.pb"),
        "digest \"mismatch\"",
    ));
    let lines: Vec<String> = render_json_lines(&report)
        .lines()
        .map(String::from)
        .collect();
    assert_eq!(lines.len(), 3);
    assert_eq!(
        lines[0],
        "{\"code\":\"SA001\",\"severity\":\"error\",\
         \"location\":{\"kind\":\"workload\",\"workload\":\"505.mcf_r\",\
         \"item\":\"phase 3\"},\
         \"message\":\"phase 3 references block 9, but the program has 4 block(s)\",\
         \"help\":\"%HELP%\"}"
            .replace("%HELP%", Rule::DanglingBlockRef.help())
    );
    assert_eq!(
        lines[1],
        "{\"code\":\"SA020\",\"severity\":\"error\",\
         \"location\":{\"kind\":\"config\",\"field\":\"slice_size\"},\
         \"message\":\"slice_size is 0\",\"help\":\"%HELP%\"}"
            .replace("%HELP%", Rule::ZeroSliceSize.help())
    );
    // Escaping inside messages survives round-tripping into the line.
    assert!(lines[2].contains("\"message\":\"digest \\\"mismatch\\\"\""));
    assert!(lines[2].contains("\"kind\":\"artifact\",\"path\":\"out/505.mcf_r.pb\""));
}

#[test]
fn at_least_eight_distinct_rules_fire_in_this_suite() {
    // Meta-check mirroring the acceptance criterion: count the distinct
    // rules exercised by a representative subset of the fixtures above.
    let mut fired = Vec::new();
    let (blocks, mut phases, sched) = clean_parts();
    phases[0].blocks = vec![0, 7];
    phases[0].block_weights = vec![1.0];
    phases[0].selection_noise = -1.0;
    phases.push(phase(Vec::new()));
    for d in lint_parts(&blocks, &phases, &sched).diagnostics() {
        fired.push(d.rule);
    }
    let options = SimPointOptions {
        max_k: 0,
        dim: 0,
        n_init: 0,
        max_iter: 0,
        bic_threshold: -1.0,
        sample_size: 0,
        ..Default::default()
    };
    for d in lint_simpoint_options(&options).diagnostics() {
        fired.push(d.rule);
    }
    fired.sort_by_key(|r| r.code());
    fired.dedup();
    assert!(
        fired.len() >= 8,
        "only {} distinct rules fired: {fired:?}",
        fired.len()
    );
}

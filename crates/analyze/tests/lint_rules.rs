//! Per-rule fixtures: every `SA0xx` rule has one triggering fixture and
//! one clean counterpart, plus a golden test of the JSON renderer shape.

use sampsim_analyze::{
    audit_bbvs, audit_bbvs_static, audit_cursors, audit_regions, audit_simpoints,
    diagnose_ir_error, diagnose_unreadable_artifact, lint_hierarchy, lint_memory, lint_phase_graph,
    lint_program, lint_program_parts, lint_sampling_config, lint_simpoint_options,
    render_json_lines, AuditSummary, Diagnostic, Location, Report, Rule, SamplingConfig, Severity,
    StaticBbvBounds,
};
use sampsim_cache::{configs, HierarchyConfig};
use sampsim_pinball::RegionalPinball;
use sampsim_simpoint::bbv::Bbv;
use sampsim_simpoint::{SimPoint, SimPointOptions, SimPointsResult};
use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};
use sampsim_workload::{
    AddressPattern, BasicBlock, Cursor, InstKind, MemRegion, Phase, Program, Schedule, Segment,
    StaticInst, StreamSpec,
};

// ---------------------------------------------------------------- helpers

fn alu_block(pc: u64) -> BasicBlock {
    BasicBlock {
        insts: vec![
            StaticInst {
                kind: InstKind::Alu,
            },
            StaticInst {
                kind: InstKind::Alu,
            },
            StaticInst {
                kind: InstKind::Branch { bias: 32_768 },
            },
        ],
        pc,
    }
}

fn mem_block(pc: u64, stream: u16) -> BasicBlock {
    BasicBlock {
        insts: vec![
            StaticInst {
                kind: InstKind::Load { stream },
            },
            StaticInst {
                kind: InstKind::Branch { bias: 32_768 },
            },
        ],
        pc,
    }
}

fn stream(base: u64, size: u64) -> StreamSpec {
    StreamSpec {
        region: MemRegion { base, size },
        pattern: AddressPattern::Stride { stride: 64 },
    }
}

fn phase(blocks: Vec<u32>) -> Phase {
    let weights = vec![1.0; blocks.len()];
    Phase {
        blocks,
        block_weights: weights,
        streams: Vec::new(),
        stream_base: 0,
        selection_noise: 0.1,
    }
}

fn schedule(phases: &[u32]) -> Schedule {
    Schedule::new(
        phases
            .iter()
            .map(|&p| Segment {
                phase: p,
                insts: 1_000,
            })
            .collect(),
    )
    .unwrap()
}

/// A minimal structurally valid (blocks, phases, schedule) triple.
fn clean_parts() -> (Vec<BasicBlock>, Vec<Phase>, Schedule) {
    (
        vec![alu_block(0x1000)],
        vec![phase(vec![0])],
        schedule(&[0]),
    )
}

fn lint_parts(blocks: &[BasicBlock], phases: &[Phase], sched: &Schedule) -> Report {
    lint_program_parts("fixture", blocks, phases, sched)
}

fn built_program() -> Program {
    WorkloadSpec::builder("audit-fixture", 7)
        .total_insts(100_000)
        .phase(PhaseSpec::balanced(1.0))
        .build()
        .build()
}

fn region(program: &Program, slice_index: u64, length: u64, weight: f64) -> RegionalPinball {
    let mut cursor = Cursor::start(program);
    cursor.retired = slice_index * length;
    RegionalPinball::new(
        program,
        slice_index,
        cursor,
        length,
        weight,
        slice_index as u32,
    )
}

fn simpoints_result() -> SimPointsResult {
    SimPointsResult {
        k: 2,
        slice_size: 1_000,
        assignments: vec![0, 1, 0, 1],
        points: vec![
            SimPoint {
                slice: 0,
                cluster: 0,
                weight: 0.5,
            },
            SimPoint {
                slice: 1,
                cluster: 1,
                weight: 0.5,
            },
        ],
        bic_scores: vec![(1, 0.5), (2, 1.0)],
        avg_variance: 0.1,
    }
}

// ---------------------------------------------------------- workload rules

#[test]
fn clean_parts_have_no_findings() {
    let (blocks, phases, sched) = clean_parts();
    let report = lint_parts(&blocks, &phases, &sched);
    assert!(report.is_empty(), "{:?}", report.diagnostics());
}

#[test]
fn sa001_dangling_block_ref() {
    let (blocks, mut phases, sched) = clean_parts();
    phases[0].blocks = vec![0, 7];
    phases[0].block_weights = vec![1.0, 1.0];
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::DanglingBlockRef));
}

#[test]
fn sa002_dangling_phase_ref() {
    let (blocks, phases, _) = clean_parts();
    let sched = schedule(&[0, 3]);
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::DanglingPhaseRef));
}

#[test]
fn sa003_unreachable_phase() {
    let (blocks, mut phases, sched) = clean_parts();
    phases.push(phase(vec![0])); // phase 1 never scheduled
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::UnreachablePhase));
}

#[test]
fn sa004_empty_phase() {
    let (blocks, mut phases, sched) = clean_parts();
    phases[0].blocks.clear();
    phases[0].block_weights.clear();
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::EmptyPhase));
}

#[test]
fn sa005_bad_block_weights() {
    let (blocks, mut phases, sched) = clean_parts();
    phases[0].block_weights = vec![1.0, 2.0]; // length mismatch
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::BadBlockWeights));
    phases[0].block_weights = vec![-1.0]; // non-positive
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::BadBlockWeights));
    phases[0].block_weights = vec![f64::NAN];
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::BadBlockWeights));
}

#[test]
fn sa006_bad_selection_noise() {
    let (blocks, mut phases, sched) = clean_parts();
    phases[0].selection_noise = 1.5;
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::BadSelectionNoise));
}

#[test]
fn sa007_dangling_stream_ref() {
    let (_, mut phases, sched) = clean_parts();
    let blocks = vec![mem_block(0x1000, 2)]; // stream 2 of 1
    phases[0].streams = vec![stream(0x1_0000, 4096)];
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::DanglingStreamRef));
    // Clean counterpart: stream 0 exists.
    let blocks = vec![mem_block(0x1000, 0)];
    assert!(lint_parts(&blocks, &phases, &sched).is_empty());
}

#[test]
fn sa008_overlapping_stream_regions() {
    let (_, mut phases, sched) = clean_parts();
    let blocks = vec![mem_block(0x1000, 0)];
    phases[0].streams = vec![stream(0x1_0000, 4096), stream(0x1_0800, 4096)];
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::OverlappingStreamRegions));
    // Adjacent-but-disjoint regions are fine.
    phases[0].streams = vec![stream(0x1_0000, 4096), stream(0x1_1000, 4096)];
    assert!(!lint_parts(&blocks, &phases, &sched).fired(Rule::OverlappingStreamRegions));
}

#[test]
fn sa009_empty_schedule() {
    let (blocks, mut phases, _) = clean_parts();
    let sched = Schedule::new(Vec::new()).unwrap();
    phases[0].blocks = vec![0];
    let report = lint_parts(&blocks, &phases, &sched);
    assert!(report.fired(Rule::EmptySchedule));
}

#[test]
fn sa010_empty_block() {
    let (mut blocks, phases, sched) = clean_parts();
    blocks.push(BasicBlock {
        insts: Vec::new(),
        pc: 0x2000,
    });
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::EmptyBlock));
}

#[test]
fn sa011_stream_base_mismatch() {
    let (_, mut phases, _) = clean_parts();
    let blocks = vec![mem_block(0x1000, 0)];
    let sched = schedule(&[0, 1]);
    phases[0].streams = vec![stream(0x1_0000, 4096)];
    let mut second = phase(vec![0]);
    second.stream_base = 5; // should be 1 (phase 0 owns one stream)
    phases.push(second);
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::StreamBaseMismatch));
    phases[1].stream_base = 1;
    assert!(!lint_parts(&blocks, &phases, &sched).fired(Rule::StreamBaseMismatch));
}

#[test]
fn sa012_zero_size_region() {
    let (_, mut phases, sched) = clean_parts();
    let blocks = vec![mem_block(0x1000, 0)];
    phases[0].streams = vec![stream(0x1_0000, 0)];
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::ZeroSizeRegion));
}

#[test]
fn built_suite_program_is_clean() {
    assert!(lint_program(&built_program()).is_empty());
}

#[test]
fn sa013_missing_terminal_branch() {
    let (mut blocks, phases, sched) = clean_parts();
    blocks[0].insts.push(StaticInst {
        kind: InstKind::Alu,
    }); // branch no longer last
    assert!(lint_parts(&blocks, &phases, &sched).fired(Rule::MissingTerminalBranch));
    let (blocks, phases, sched) = clean_parts();
    assert!(!lint_parts(&blocks, &phases, &sched).fired(Rule::MissingTerminalBranch));
}

#[test]
fn sa014_zero_length_segment() {
    // `Schedule::new` rejects the segment at construction; the typed error
    // maps onto the same rule the defensive lint check carries.
    let err = Schedule::new(vec![Segment { phase: 0, insts: 0 }]).unwrap_err();
    let diag = diagnose_ir_error("fixture", &err);
    assert_eq!(diag.rule, Rule::ZeroLengthSegment);
    assert!(Schedule::new(vec![Segment { phase: 0, insts: 1 }]).is_ok());
}

// ------------------------------------------------------------ config rules

fn config_with<'a>(simpoint: &'a SimPointOptions) -> SamplingConfig<'a> {
    SamplingConfig {
        slice_size: 10_000,
        warmup_slices: 48,
        simpoint,
        profile_cache: None,
        expected_slices: Some(1_000),
    }
}

#[test]
fn default_config_is_clean() {
    let options = SimPointOptions::default();
    assert!(lint_sampling_config(&config_with(&options)).is_empty());
}

#[test]
fn sa020_zero_slice_size() {
    let options = SimPointOptions::default();
    let mut config = config_with(&options);
    config.slice_size = 0;
    assert!(lint_sampling_config(&config).fired(Rule::ZeroSliceSize));
}

#[test]
fn sa021_bad_max_k() {
    let options = SimPointOptions {
        max_k: 0,
        ..Default::default()
    };
    assert!(lint_simpoint_options(&options).fired(Rule::BadMaxK));
}

#[test]
fn sa022_max_k_exceeds_slices() {
    let options = SimPointOptions::default();
    let mut config = config_with(&options);
    config.expected_slices = Some(10); // MaxK 35 >= 10 slices
    assert!(lint_sampling_config(&config).fired(Rule::MaxKExceedsSlices));
}

#[test]
fn sa023_bad_projection_dim() {
    let options = SimPointOptions {
        dim: 0,
        ..Default::default()
    };
    assert!(lint_simpoint_options(&options).fired(Rule::BadProjectionDim));
}

#[test]
fn sa024_zero_init() {
    let options = SimPointOptions {
        n_init: 0,
        ..Default::default()
    };
    assert!(lint_simpoint_options(&options).fired(Rule::ZeroInit));
}

#[test]
fn sa025_zero_max_iter() {
    let options = SimPointOptions {
        max_iter: 0,
        ..Default::default()
    };
    assert!(lint_simpoint_options(&options).fired(Rule::ZeroMaxIter));
}

#[test]
fn sa026_bad_bic_threshold() {
    let options = SimPointOptions {
        bic_threshold: 1.5,
        ..Default::default()
    };
    assert!(lint_simpoint_options(&options).fired(Rule::BadBicThreshold));
}

#[test]
fn sa027_zero_sample_size() {
    let options = SimPointOptions {
        sample_size: 0,
        ..Default::default()
    };
    assert!(lint_simpoint_options(&options).fired(Rule::ZeroSampleSize));
}

#[test]
fn sa028_excessive_warmup() {
    let options = SimPointOptions::default();
    let mut config = config_with(&options);
    config.warmup_slices = 1_000; // covers the whole 1000-slice run
    assert!(lint_sampling_config(&config).fired(Rule::ExcessiveWarmup));
}

// ------------------------------------------------------- hierarchy rules

fn hierarchy() -> HierarchyConfig {
    configs::allcache_table1()
}

#[test]
fn paper_hierarchies_are_clean() {
    for h in [configs::allcache_table1(), configs::i7_table3()] {
        assert!(lint_hierarchy(&h, "cache").is_empty());
    }
}

#[test]
fn sa030_line_not_pow2() {
    let mut h = hierarchy();
    h.l1d.line_bytes = 48;
    assert!(lint_hierarchy(&h, "cache").fired(Rule::LineNotPow2));
}

#[test]
fn sa031_bad_cache_geometry() {
    let mut h = hierarchy();
    h.l2.ways = 0;
    assert!(lint_hierarchy(&h, "cache").fired(Rule::BadCacheGeometry));
    let mut h = hierarchy();
    h.l3.size_bytes += 1; // no longer a multiple of ways * line
    assert!(lint_hierarchy(&h, "cache").fired(Rule::BadCacheGeometry));
}

#[test]
fn sa032_latency_inversion() {
    let mut h = hierarchy();
    h.l2.latency = h.l3.latency + 10;
    assert!(lint_hierarchy(&h, "cache").fired(Rule::LatencyInversion));
}

#[test]
fn sa033_line_size_mismatch() {
    let mut h = hierarchy();
    h.l1d.line_bytes = 128;
    h.l1d.size_bytes = 32 * 1024; // keep the geometry valid: 32K/8/128 = 32 sets
    assert!(lint_hierarchy(&h, "cache").fired(Rule::LineSizeMismatch));
}

#[test]
fn sa034_bad_tlb() {
    let mut h = hierarchy();
    h.dtlb.entries = 0;
    assert!(lint_hierarchy(&h, "cache").fired(Rule::BadTlb));
    let mut h = hierarchy();
    h.itlb.page_bytes = 5_000;
    assert!(lint_hierarchy(&h, "cache").fired(Rule::BadTlb));
}

// ------------------------------------------------------- artifact rules

#[test]
fn valid_artifacts_are_clean() {
    assert!(audit_simpoints(&simpoints_result(), "fixture").is_empty());
    let program = built_program();
    let regions = vec![region(&program, 2, 1_000, 1.0)];
    assert!(audit_regions(&regions, &program, "fixture").is_empty());
    let bbvs = vec![Bbv::from_counts(vec![(0, 10), (3, 5)])];
    assert!(audit_bbvs(&bbvs, 4, "fixture").is_empty());
}

#[test]
fn sa040_weight_sum_drift() {
    let mut r = simpoints_result();
    r.points[0].weight = 0.25; // sums to 0.75
    assert!(audit_simpoints(&r, "fixture").fired(Rule::WeightSumDrift));
}

#[test]
fn sa041_bad_weight() {
    let mut r = simpoints_result();
    r.points[0].weight = -0.5;
    r.points[1].weight = 1.5;
    assert!(audit_simpoints(&r, "fixture").fired(Rule::BadWeight));
}

#[test]
fn sa042_point_out_of_range() {
    let mut r = simpoints_result();
    r.points[1].slice = 99; // only 4 slices
    assert!(audit_simpoints(&r, "fixture").fired(Rule::PointOutOfRange));
}

#[test]
fn sa043_bad_assignment() {
    let mut r = simpoints_result();
    r.assignments[2] = 9; // outside k = 2
    assert!(audit_simpoints(&r, "fixture").fired(Rule::BadAssignment));
    let mut r = simpoints_result();
    r.points[0].cluster = 5;
    assert!(audit_simpoints(&r, "fixture").fired(Rule::BadAssignment));
}

#[test]
fn sa044_empty_cluster() {
    let mut r = simpoints_result();
    r.assignments = vec![0, 0, 0, 0]; // cluster 1 empty
    assert!(audit_simpoints(&r, "fixture").fired(Rule::EmptyCluster));
}

#[test]
fn sa045_bbv_dim_mismatch() {
    let bbvs = vec![Bbv::from_counts(vec![(9, 10)])];
    assert!(audit_bbvs(&bbvs, 4, "fixture").fired(Rule::BbvDimMismatch));
}

#[test]
fn sa046_empty_bbv() {
    let bbvs = vec![Bbv::from_counts(Vec::new())];
    assert!(audit_bbvs(&bbvs, 4, "fixture").fired(Rule::EmptyBbv));
}

#[test]
fn sa047_digest_mismatch() {
    let program = built_program();
    let mut pb = region(&program, 2, 1_000, 1.0);
    pb.program_digest ^= 0xBAD;
    assert!(audit_regions(&[pb], &program, "fixture").fired(Rule::DigestMismatch));
}

#[test]
fn sa048_misaligned_region() {
    let program = built_program();
    let mut pb = region(&program, 2, 1_000, 1.0);
    pb.start.retired = 2_500; // not slice-aligned
    assert!(audit_regions(&[pb], &program, "fixture").fired(Rule::MisalignedRegion));
    // Beyond the program end.
    let mut pb = region(&program, 2, 1_000, 1.0);
    pb.slice_index = 200; // 200 * 1000 > 100 000 total
    pb.start.retired = 200_000;
    assert!(audit_regions(&[pb], &program, "fixture").fired(Rule::MisalignedRegion));
}

#[test]
fn sa049_duplicate_points() {
    let program = built_program();
    let regions = vec![
        region(&program, 2, 1_000, 0.5),
        region(&program, 2, 1_000, 0.5),
    ];
    assert!(audit_regions(&regions, &program, "fixture").fired(Rule::DuplicatePoints));
    let mut r = simpoints_result();
    r.points[1].slice = 0; // duplicate slice among points
    assert!(audit_simpoints(&r, "fixture").fired(Rule::DuplicatePoints));
}

// ----------------------------------------- memory abstract interpretation

/// A structurally valid program with one memory phase whose single stream
/// uses `pattern` over a `size`-byte region.
fn stream_program(pattern: AddressPattern, size: u64) -> Program {
    let blocks = vec![mem_block(0x1000, 0)];
    let mut p = phase(vec![0]);
    p.streams = vec![StreamSpec {
        region: MemRegion {
            base: 0x1_0000,
            size,
        },
        pattern,
    }];
    Program::new("mem-fixture", blocks, vec![p], schedule(&[0]), 13).unwrap()
}

fn stride_program(stride: u64, size: u64) -> Program {
    stream_program(AddressPattern::Stride { stride }, size)
}

#[test]
fn sa100_set_aliasing_stride() {
    // allcache L1D: 32 KiB / 32-way / 32 B lines = 32 sets, 1 KiB set
    // span. A 1 KiB stride over 64 KiB lands 64 lines in ONE set.
    let h = hierarchy();
    assert!(lint_memory(&stride_program(1024, 64 * 1024), &h).fired(Rule::SetAliasingStride));
    // 64 B strides rotate through all sets: clean.
    assert!(!lint_memory(&stride_program(64, 64 * 1024), &h).fired(Rule::SetAliasingStride));
    // Same stride over 32 KiB: 32 resident lines fit the 32 ways.
    assert!(!lint_memory(&stride_program(1024, 32 * 1024), &h).fired(Rule::SetAliasingStride));
}

#[test]
fn sa101_degenerate_stride() {
    let h = hierarchy();
    assert!(lint_memory(&stride_program(0, 4096), &h).fired(Rule::DegenerateStride));
    assert!(lint_memory(&stride_program(4096, 4096), &h).fired(Rule::DegenerateStride));
    assert!(!lint_memory(&stride_program(64, 4096), &h).fired(Rule::DegenerateStride));
}

#[test]
fn sa102_dead_stream() {
    // The phase owns a stream, but its only block is pure ALU: no
    // instruction can ever reference the stream.
    let mut p = phase(vec![0]);
    p.streams = vec![stream(0x1_0000, 4096)];
    let dead = Program::new(
        "mem-fixture",
        vec![alu_block(0x1000)],
        vec![p],
        schedule(&[0]),
        13,
    )
    .unwrap();
    assert!(lint_memory(&dead, &hierarchy()).fired(Rule::DeadStream));
    // The mem-block program references stream 0: clean.
    assert!(!lint_memory(&stride_program(64, 4096), &hierarchy()).fired(Rule::DeadStream));
}

#[test]
fn sa103_code_footprint_exceeds_l1i() {
    // Two blocks 40 KiB apart span more code than the 32 KiB L1I.
    let blocks = vec![alu_block(0x1000), alu_block(0x1000 + 40 * 1024)];
    let p = Program::new(
        "mem-fixture",
        blocks,
        vec![phase(vec![0, 1])],
        schedule(&[0]),
        13,
    )
    .unwrap();
    let report = lint_memory(&p, &hierarchy());
    assert!(report.fired(Rule::CodeFootprintExceedsL1I));
    // The finding is informational, not a deny-warnings failure.
    assert_eq!(report.exit_code(true), 0);
    // Adjacent blocks: clean.
    let blocks = vec![alu_block(0x1000), alu_block(0x2000)];
    let p = Program::new(
        "mem-fixture",
        blocks,
        vec![phase(vec![0, 1])],
        schedule(&[0]),
        13,
    )
    .unwrap();
    assert!(!lint_memory(&p, &hierarchy()).fired(Rule::CodeFootprintExceedsL1I));
}

#[test]
fn sa104_tlb_thrashing_stride() {
    // Page-sized strides over 1 MiB touch 256 pages; the 64-entry DTLB
    // (4 KiB pages) covers only 256 KiB.
    let h = hierarchy();
    assert!(lint_memory(&stride_program(4096, 1 << 20), &h).fired(Rule::TlbThrashingStride));
    // Same stride over a region the TLB reach covers: clean.
    assert!(!lint_memory(&stride_program(4096, 128 * 1024), &h).fired(Rule::TlbThrashingStride));
    // Sub-page strides: clean regardless of region size.
    assert!(!lint_memory(&stride_program(64, 1 << 20), &h).fired(Rule::TlbThrashingStride));
}

// --------------------------------------------------------- phase graph

#[test]
fn sa110_non_recurrent_phase() {
    // Phases 1 and 2 each run exactly once: SimPoint cannot tell their
    // one-shot slices from recurring behavior.
    let report = lint_phase_graph("fixture", 3, &schedule(&[0, 1, 0, 2, 0]));
    assert!(report.fired(Rule::NonRecurrentPhase));
    // Both phases fold into one per-workload note naming each.
    assert_eq!(report.diagnostics().len(), 1);
    assert!(report.diagnostics()[0].message.contains("1, 2"));
    // Every phase recurs: clean.
    assert!(lint_phase_graph("fixture", 2, &schedule(&[0, 1, 0, 1])).is_empty());
    // A single-phase program is exempt (nothing to confuse).
    assert!(lint_phase_graph("fixture", 1, &schedule(&[0])).is_empty());
}

// ------------------------------------------- static-vs-dynamic oracle

/// A clean dynamic profile for `stride_program(64, 4096)`: each slice
/// retires exactly its granted instructions in the phase's only block.
fn clean_bbvs(program: &Program, bounds: &StaticBbvBounds) -> Vec<Bbv> {
    let block = program.phases()[0].blocks[0];
    (0..bounds.num_slices())
        .map(|i| Bbv::from_counts(vec![(block, bounds.slice_total(i) as u32)]))
        .collect()
}

#[test]
fn sa120_bbv_block_outside_slice() {
    let p = stride_program(64, 4096);
    let bounds = StaticBbvBounds::derive(&p, 100);
    let mut bbvs = clean_bbvs(&p, &bounds);
    assert!(audit_bbvs_static(&p, &bounds, &bbvs).is_empty());
    // Replace slice 3's count with one in a block no scheduled phase owns.
    bbvs[3] = Bbv::from_counts(vec![(999, bounds.slice_total(3) as u32)]);
    assert!(audit_bbvs_static(&p, &bounds, &bbvs).fired(Rule::BbvBlockOutsideSlice));
}

#[test]
fn sa121_bbv_count_exceeds_bound() {
    let p = stride_program(64, 4096);
    let bounds = StaticBbvBounds::derive(&p, 100);
    let block = p.phases()[0].blocks[0];
    let mut bbvs = clean_bbvs(&p, &bounds);
    // Keep another block under-counted so the total still matches: only
    // the per-block cap is violated.
    bbvs[2] = Bbv::from_counts(vec![(block, bounds.slice_total(2) as u32 + 500)]);
    let report = audit_bbvs_static(&p, &bounds, &bbvs);
    assert!(report.fired(Rule::BbvCountExceedsBound));
}

#[test]
fn sa122_bbv_total_mismatch() {
    let p = stride_program(64, 4096);
    let bounds = StaticBbvBounds::derive(&p, 100);
    let block = p.phases()[0].blocks[0];
    let mut bbvs = clean_bbvs(&p, &bounds);
    bbvs[1] = Bbv::from_counts(vec![(block, 7)]); // slice grants 100
    assert!(audit_bbvs_static(&p, &bounds, &bbvs).fired(Rule::BbvTotalMismatch));
    // Wrong slice count is the same rule at the profile level.
    let short = clean_bbvs(&p, &bounds)[..3].to_vec();
    assert!(audit_bbvs_static(&p, &bounds, &short).fired(Rule::BbvTotalMismatch));
    assert!(audit_bbvs_static(&p, &bounds, &clean_bbvs(&p, &bounds)).is_empty());
}

#[test]
fn sa123_cursor_schedule_mismatch() {
    let p = stride_program(64, 4096);
    let clean = vec![Cursor::start(&p)];
    assert!(audit_cursors(&p, 100, &clean).is_empty());
    // A slice-0 cursor claiming retired instructions contradicts the
    // schedule.
    let mut bad = Cursor::start(&p);
    bad.retired = 123;
    assert!(audit_cursors(&p, 100, &[bad]).fired(Rule::CursorScheduleMismatch));
    // Cursor carrying the wrong number of stream states.
    let mut bad = Cursor::start(&p);
    bad.streams.push(0);
    assert!(audit_cursors(&p, 100, &[bad]).fired(Rule::CursorScheduleMismatch));
}

#[test]
fn sa125_stream_state_outside_domain() {
    let p = stride_program(64, 4096);
    // Position 13 is not a multiple of gcd(64, 4096): unreachable.
    let mut bad = Cursor::start(&p);
    bad.streams[0] = 13;
    assert!(audit_cursors(&p, 100, &[bad]).fired(Rule::StreamStateOutsideDomain));
    // Position past the region: unreachable.
    let mut bad = Cursor::start(&p);
    bad.streams[0] = 4096;
    assert!(audit_cursors(&p, 100, &[bad]).fired(Rule::StreamStateOutsideDomain));
    // A reachable stride position: clean.
    let mut ok = Cursor::start(&p);
    ok.streams[0] = 128;
    assert!(audit_cursors(&p, 100, &[ok]).is_empty());
    // Distribution-sampled streams never advance their position.
    let p = stream_program(AddressPattern::Random, 4096);
    let mut bad = Cursor::start(&p);
    bad.streams[0] = 64;
    assert!(audit_cursors(&p, 100, &[bad]).fired(Rule::StreamStateOutsideDomain));
}

#[test]
fn sa124_artifact_unreadable() {
    let p = stride_program(64, 4096);
    let bounds = StaticBbvBounds::derive(&p, 100);
    let summary = AuditSummary::capture(&p, 1.0, &bounds);
    let bytes = summary.to_bytes();
    // Valid bytes round-trip and check clean.
    assert!(AuditSummary::from_bytes(&bytes).is_ok());
    assert!(summary.check("x.art", &p, 1.0, &bounds).is_empty());
    // Garbage is rejected with a typed decode error that maps to SA124.
    let err = AuditSummary::from_bytes(b"not an artifact").unwrap_err();
    let diag = diagnose_unreadable_artifact("x.art", &err);
    assert_eq!(diag.rule, Rule::ArtifactUnreadable);
    assert_eq!(diag.rule.severity(), Severity::Error);
}

// --------------------------------------------------------------- renderer

#[test]
fn json_renderer_golden_shape() {
    let mut report = Report::new();
    report.push(Diagnostic::new(
        Rule::DanglingBlockRef,
        Location::workload_item("505.mcf_r", "phase 3"),
        "phase 3 references block 9, but the program has 4 block(s)",
    ));
    report.push(Diagnostic::new(
        Rule::ZeroSliceSize,
        Location::config("slice_size"),
        "slice_size is 0",
    ));
    report.push(Diagnostic::new(
        Rule::DigestMismatch,
        Location::artifact("out/505.mcf_r.pb"),
        "digest \"mismatch\"",
    ));
    report.push(Diagnostic::new(
        Rule::DeadStream,
        Location::workload_item("505.mcf_r", "phase 0, stream 1"),
        "stream 1 is never referenced",
    ));
    let lines: Vec<String> = render_json_lines(&report)
        .lines()
        .map(String::from)
        .collect();
    assert_eq!(lines.len(), 4);
    assert_eq!(
        lines[0],
        "{\"code\":\"SA001\",\"severity\":\"error\",\
         \"location\":{\"kind\":\"workload\",\"workload\":\"505.mcf_r\",\
         \"item\":\"phase 3\"},\
         \"message\":\"phase 3 references block 9, but the program has 4 block(s)\",\
         \"help\":\"%HELP%\"}"
            .replace("%HELP%", Rule::DanglingBlockRef.help())
    );
    assert_eq!(
        lines[1],
        "{\"code\":\"SA020\",\"severity\":\"error\",\
         \"location\":{\"kind\":\"config\",\"field\":\"slice_size\"},\
         \"message\":\"slice_size is 0\",\"help\":\"%HELP%\"}"
            .replace("%HELP%", Rule::ZeroSliceSize.help())
    );
    // Escaping inside messages survives round-tripping into the line.
    assert!(lines[2].contains("\"message\":\"digest \\\"mismatch\\\"\""));
    assert!(lines[2].contains("\"kind\":\"artifact\",\"path\":\"out/505.mcf_r.pb\""));
    // The SA1xx families render through the same shape, with note
    // severity spelled out.
    assert_eq!(
        lines[3],
        "{\"code\":\"SA102\",\"severity\":\"note\",\
         \"location\":{\"kind\":\"workload\",\"workload\":\"505.mcf_r\",\
         \"item\":\"phase 0, stream 1\"},\
         \"message\":\"stream 1 is never referenced\",\"help\":\"%HELP%\"}"
            .replace("%HELP%", Rule::DeadStream.help())
    );
}

#[test]
fn at_least_eight_distinct_rules_fire_in_this_suite() {
    // Meta-check mirroring the acceptance criterion: count the distinct
    // rules exercised by a representative subset of the fixtures above.
    let mut fired = Vec::new();
    let (blocks, mut phases, sched) = clean_parts();
    phases[0].blocks = vec![0, 7];
    phases[0].block_weights = vec![1.0];
    phases[0].selection_noise = -1.0;
    phases.push(phase(Vec::new()));
    for d in lint_parts(&blocks, &phases, &sched).diagnostics() {
        fired.push(d.rule);
    }
    let options = SimPointOptions {
        max_k: 0,
        dim: 0,
        n_init: 0,
        max_iter: 0,
        bic_threshold: -1.0,
        sample_size: 0,
        ..Default::default()
    };
    for d in lint_simpoint_options(&options).diagnostics() {
        fired.push(d.rule);
    }
    fired.sort_by_key(|r| r.code());
    fired.dedup();
    assert!(
        fired.len() >= 8,
        "only {} distinct rules fired: {fired:?}",
        fired.len()
    );
}

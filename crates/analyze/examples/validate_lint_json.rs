//! Schema check for `sampsim lint --format json` / `sampsim audit
//! --format json` output.
//!
//! Reads JSON-lines diagnostics from stdin and validates every object
//! against the renderer's contract: the exact key set, a `SAxxx` code, a
//! known severity, and a well-formed discriminated `location` object.
//! Exits non-zero (with the offending line on stderr) on the first
//! violation, so `scripts/check.sh` can pipe lint output straight
//! through it.
//!
//! ```text
//! sampsim lint --format json | cargo run -p sampsim-analyze --example validate_lint_json
//! ```

use sampsim_util::json::{parse, Value};
use std::io::Read;
use std::process::ExitCode;

fn check_line(line: &str) -> Result<(), String> {
    let value = parse(line).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let Value::Object(fields) = &value else {
        return Err("top level is not an object".into());
    };
    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    if keys != ["code", "severity", "location", "message", "help"] {
        return Err(format!("unexpected key set {keys:?}"));
    }

    let code = value.get("code").and_then(Value::as_str).unwrap_or("");
    let digits = code.strip_prefix("SA").unwrap_or("");
    if digits.len() != 3 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!("bad rule code {code:?}"));
    }

    let severity = value.get("severity").and_then(Value::as_str).unwrap_or("");
    if !["error", "warning", "note"].contains(&severity) {
        return Err(format!("bad severity {severity:?}"));
    }

    for key in ["message", "help"] {
        match value.get(key).and_then(Value::as_str) {
            Some(s) if !s.is_empty() => {}
            _ => return Err(format!("{key} is missing, empty or not a string")),
        }
    }

    let location = value.get("location").ok_or("location is missing")?;
    let Value::Object(loc_fields) = location else {
        return Err("location is not an object".into());
    };
    let loc_keys: Vec<&str> = loc_fields.iter().map(|(k, _)| k.as_str()).collect();
    let kind = location.get("kind").and_then(Value::as_str).unwrap_or("");
    let expected: &[&str] = match kind {
        // `item` is optional for workload locations.
        "workload" if loc_keys.len() == 3 => &["kind", "workload", "item"],
        "workload" => &["kind", "workload"],
        "config" => &["kind", "field"],
        "artifact" => &["kind", "path"],
        other => return Err(format!("bad location kind {other:?}")),
    };
    if loc_keys != expected {
        return Err(format!("location of kind {kind:?} has keys {loc_keys:?}"));
    }
    for (_, v) in loc_fields {
        if v.as_str().is_none_or(str::is_empty) {
            return Err("location fields must be non-empty strings".into());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut input = String::new();
    if std::io::stdin().read_to_string(&mut input).is_err() {
        eprintln!("validate_lint_json: stdin is not UTF-8");
        return ExitCode::FAILURE;
    }
    let mut checked = 0usize;
    for line in input.lines().filter(|l| !l.trim().is_empty()) {
        if let Err(why) = check_line(line) {
            eprintln!("validate_lint_json: {why}\n  in line: {line}");
            return ExitCode::FAILURE;
        }
        checked += 1;
    }
    println!("validate_lint_json: {checked} diagnostic line(s) conform");
    ExitCode::SUCCESS
}

//! Abstract interpretation over memory streams: footprint intervals,
//! stride classes, and cache-geometry pathology lints (`SA10x`).
//!
//! Instead of executing a program, [`MemorySummary::analyze`] computes for
//! every address stream a sound abstraction of the addresses it can emit —
//! an [`Interval`] footprint plus a [`StrideClass`] — and per-phase
//! working-set bounds. [`lint_memory`] then checks those abstractions
//! against a concrete [`HierarchyConfig`]: a stride that lands every
//! access in one cache set, a stride that defeats the DTLB, a region the
//! phase declares but never touches. All conditions are decided purely
//! from the static IR, so they hold for *every* execution.

use crate::diag::{Diagnostic, Location, Report, Rule};
use crate::fixpoint::JoinSemiLattice;
use sampsim_cache::hierarchy::HierarchyConfig;
use sampsim_cache::CacheConfig;
use sampsim_workload::block::INST_BYTES;
use sampsim_workload::{AddressPattern, Program};

/// An inclusive byte-address interval, with an explicit bottom (empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interval {
    /// No addresses (the lattice bottom).
    Empty,
    /// All addresses in `[lo, hi]`.
    Range {
        /// Lowest address.
        lo: u64,
        /// Highest address (inclusive).
        hi: u64,
    },
}

impl Interval {
    /// The interval covering a half-open byte range `[base, base+size)`.
    pub fn of_region(base: u64, size: u64) -> Self {
        if size == 0 {
            Interval::Empty
        } else {
            Interval::Range {
                lo: base,
                hi: base + size - 1,
            }
        }
    }

    /// Width in bytes (0 for empty).
    pub fn width(&self) -> u64 {
        match *self {
            Interval::Empty => 0,
            Interval::Range { lo, hi } => hi - lo + 1,
        }
    }

    /// Whether `addr` lies inside.
    pub fn contains(&self, addr: u64) -> bool {
        match *self {
            Interval::Empty => false,
            Interval::Range { lo, hi } => (lo..=hi).contains(&addr),
        }
    }
}

impl JoinSemiLattice for Interval {
    fn join(&mut self, other: &Self) -> bool {
        match (*self, *other) {
            (_, Interval::Empty) => false,
            (Interval::Empty, r) => {
                *self = r;
                true
            }
            (Interval::Range { lo: a, hi: b }, Interval::Range { lo: c, hi: d }) => {
                let joined = Interval::Range {
                    lo: a.min(c),
                    hi: b.max(d),
                };
                let changed = joined != *self;
                *self = joined;
                changed
            }
        }
    }
}

/// The abstract address-generation behaviour of one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrideClass {
    /// Arithmetic walk with a constant byte stride, wrapping at the
    /// region end. `positions` is the exact number of distinct byte
    /// offsets the walk visits: `size / gcd(stride, size)` (1 for a zero
    /// stride).
    Constant {
        /// Byte stride.
        stride: u64,
        /// Distinct offsets visited before the walk cycles.
        positions: u64,
    },
    /// Uniformly random over the region.
    Uniform,
    /// Power-law-skewed random (hot front of the region).
    Skewed,
    /// Serialized dependent walk (pointer chase).
    Chase,
}

/// Greatest common divisor (binary-free Euclid; `gcd(0, n) = n`).
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// The abstract state of one address stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamFacts {
    /// Owning phase index.
    pub phase: usize,
    /// Stream index within the phase.
    pub stream: usize,
    /// Sound footprint: every emitted address lies inside.
    pub footprint: Interval,
    /// Address-generation class.
    pub class: StrideClass,
    /// Whether any instruction of the phase references this stream.
    pub referenced: bool,
}

/// Per-phase working-set abstraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseFacts {
    /// Join of the phase's referenced stream footprints.
    pub data_footprint: Interval,
    /// Upper bound on distinct data bytes the phase can touch (sum of
    /// referenced region sizes; regions are disjoint when `SA008` is
    /// clean).
    pub working_set_bytes: u64,
}

/// The whole-program memory abstraction.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySummary {
    /// One entry per (phase, stream), in declaration order.
    pub streams: Vec<StreamFacts>,
    /// One entry per phase.
    pub phases: Vec<PhaseFacts>,
    /// Footprint of the static code segment.
    pub code_footprint: Interval,
}

impl MemorySummary {
    /// Computes the abstraction for `program` without executing it.
    pub fn analyze(program: &Program) -> Self {
        let mut streams = Vec::new();
        let mut phases = Vec::new();
        for (p, phase) in program.phases().iter().enumerate() {
            // Which streams do the phase's instructions actually use?
            let mut referenced = vec![false; phase.streams.len()];
            for &b in &phase.blocks {
                if let Some(block) = program.blocks().get(b as usize) {
                    for inst in &block.insts {
                        if let Some(s) = inst.stream() {
                            if let Some(flag) = referenced.get_mut(s as usize) {
                                *flag = true;
                            }
                        }
                    }
                }
            }
            let mut data_footprint = Interval::Empty;
            let mut working_set_bytes = 0u64;
            for (s, spec) in phase.streams.iter().enumerate() {
                let region = spec.region;
                let footprint = Interval::of_region(region.base, region.size);
                let class = match spec.pattern {
                    AddressPattern::Stride { stride } => StrideClass::Constant {
                        stride,
                        positions: if stride == 0 {
                            1
                        } else {
                            region.size / gcd(stride, region.size)
                        },
                    },
                    AddressPattern::Random => StrideClass::Uniform,
                    AddressPattern::SkewedRandom { .. } => StrideClass::Skewed,
                    AddressPattern::PointerChase => StrideClass::Chase,
                };
                if referenced[s] {
                    data_footprint.join(&footprint);
                    working_set_bytes += region.size;
                }
                streams.push(StreamFacts {
                    phase: p,
                    stream: s,
                    footprint,
                    class,
                    referenced: referenced[s],
                });
            }
            phases.push(PhaseFacts {
                data_footprint,
                working_set_bytes,
            });
        }
        let mut code_footprint = Interval::Empty;
        for block in program.blocks() {
            code_footprint.join(&Interval::of_region(
                block.pc,
                block.len() as u64 * INST_BYTES,
            ));
        }
        Self {
            streams,
            phases,
            code_footprint,
        }
    }
}

/// Whether a constant-stride walk over `[0, size)` conflict-aliases into a
/// single set of `cache`: every visited offset is congruent modulo the
/// cache's set span, and the walk visits more distinct lines than the set
/// has ways.
fn strides_into_one_set(stride: u64, size: u64, cache: &CacheConfig) -> bool {
    if stride == 0 || stride >= size {
        return false; // degenerate; SA101's territory
    }
    let g = gcd(stride, size);
    let span = cache.set_span_bytes();
    g.is_multiple_of(span) && size / g > u64::from(cache.ways)
}

/// Memory-stream lints against a concrete cache hierarchy (`SA10x`).
pub fn lint_memory(program: &Program, hierarchy: &HierarchyConfig) -> Report {
    let summary = MemorySummary::analyze(program);
    let name = program.name();
    let mut report = Report::new();
    let mut dead: Vec<String> = Vec::new();

    for facts in &summary.streams {
        let (p, s) = (facts.phase, facts.stream);
        let loc = || Location::workload_item(name, format!("phase {p}, stream {s}"));
        let size = facts.footprint.width();

        // SA102: declared but untouched streams — collected and folded
        // into one per-workload note below so suite-wide lints stay
        // readable.
        if !facts.referenced {
            dead.push(format!("phase {p} stream {s}"));
            continue; // an unused stream generates no addresses
        }

        let StrideClass::Constant { stride, .. } = facts.class else {
            continue;
        };

        // SA101: degenerate strides.
        if stride == 0 || stride >= size {
            report.push(Diagnostic::new(
                Rule::DegenerateStride,
                loc(),
                if stride == 0 {
                    format!("stream {s} of phase {p} has stride 0 and pins to one address")
                } else {
                    format!(
                        "stream {s} of phase {p} has stride {stride} >= region size {size}; \
                         every access wraps"
                    )
                },
            ));
            continue;
        }

        // SA100: stride x set-count aliasing, innermost aliasing level.
        let levels = [
            ("l1d", &hierarchy.l1d),
            ("l2", &hierarchy.l2),
            ("l3", &hierarchy.l3),
        ];
        for (level, cache) in levels {
            if strides_into_one_set(stride, size, cache) {
                let g = gcd(stride, size);
                report.push(Diagnostic::new(
                    Rule::SetAliasingStride,
                    loc(),
                    format!(
                        "stream {s} of phase {p}: stride {stride} over a {size}-byte region \
                         visits {} lines that all index one {level} set ({} ways)",
                        size / g,
                        cache.ways
                    ),
                ));
                break;
            }
        }

        // SA104: page-granular strides sweeping past the DTLB reach.
        let dtlb = hierarchy.dtlb;
        if stride >= dtlb.page_bytes && size > u64::from(dtlb.entries) * dtlb.page_bytes {
            report.push(Diagnostic::new(
                Rule::TlbThrashingStride,
                loc(),
                format!(
                    "stream {s} of phase {p}: stride {stride} touches a new {}-byte page \
                     every access over a {size}-byte region; the {}-entry DTLB covers only \
                     {} bytes",
                    dtlb.page_bytes,
                    dtlb.entries,
                    u64::from(dtlb.entries) * dtlb.page_bytes
                ),
            ));
        }
    }

    // SA102: one aggregated note per workload.
    if !dead.is_empty() {
        let message = if dead.len() == 1 {
            format!(
                "declared stream never referenced by an instruction: {}",
                dead[0]
            )
        } else {
            format!(
                "{} declared streams are never referenced by an instruction: {}",
                dead.len(),
                dead.join(", ")
            )
        };
        report.push(Diagnostic::new(
            Rule::DeadStream,
            Location::workload_item(name, "streams"),
            message,
        ));
    }

    // SA103: static code footprint vs the L1I.
    let code_span = summary.code_footprint.width();
    if code_span > hierarchy.l1i.size_bytes {
        report.push(Diagnostic::new(
            Rule::CodeFootprintExceedsL1I,
            Location::workload(name),
            format!(
                "static code spans {code_span} bytes but the L1I holds {} bytes",
                hierarchy.l1i.size_bytes
            ),
        ));
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_join_and_width() {
        let mut a = Interval::Empty;
        assert!(!a.join(&Interval::Empty));
        assert!(a.join(&Interval::of_region(100, 50)));
        assert_eq!(a, Interval::Range { lo: 100, hi: 149 });
        assert!(a.join(&Interval::of_region(10, 5)));
        assert_eq!(a, Interval::Range { lo: 10, hi: 149 });
        assert!(!a.join(&Interval::of_region(20, 10)), "subset: no change");
        assert_eq!(a.width(), 140);
        assert!(a.contains(10) && a.contains(149) && !a.contains(150));
        assert_eq!(Interval::of_region(5, 0), Interval::Empty);
    }

    #[test]
    fn gcd_edge_cases() {
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(1024, 65536), 1024);
    }

    #[test]
    fn one_set_aliasing_detection() {
        // allcache-style L1D: 32 KiB, 32-way, 32 B lines -> 32 sets,
        // span 1024 B.
        let l1d = CacheConfig::new(32 * 1024, 32, 32, 1);
        assert_eq!(l1d.set_span_bytes(), 1024);
        // Stride 1024 over 64 KiB: 64 lines, all in one 32-way set.
        assert!(strides_into_one_set(1024, 64 * 1024, &l1d));
        // Stride 1024 over 32 KiB: 32 lines fit the 32 ways exactly.
        assert!(!strides_into_one_set(1024, 32 * 1024, &l1d));
        // Stride 8 (the shipped suite's unit stride): dense walk, fine.
        assert!(!strides_into_one_set(8, 64 * 1024, &l1d));
        // Degenerate strides are SA101's problem.
        assert!(!strides_into_one_set(0, 4096, &l1d));
        assert!(!strides_into_one_set(8192, 4096, &l1d));
    }
}

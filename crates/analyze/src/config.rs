//! Sampling-configuration lints (`SA020`–`SA034`): slicing and clustering
//! parameters plus cache-hierarchy geometry.
//!
//! The pipeline's configuration type lives in `sampsim-core`, which depends
//! on this crate; [`SamplingConfig`] is the dependency-neutral view of it
//! that callers assemble before linting.

use crate::diag::{Diagnostic, Location, Report, Rule};
use sampsim_cache::{CacheConfig, HierarchyConfig, TlbConfig};
use sampsim_simpoint::SimPointOptions;

/// A dependency-neutral view of a sampling-pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct SamplingConfig<'a> {
    /// Slice length in instructions.
    pub slice_size: u64,
    /// Warmup window in slices.
    pub warmup_slices: u64,
    /// SimPoint analysis options.
    pub simpoint: &'a SimPointOptions,
    /// Cache hierarchy profiled during the whole pass, if any.
    pub profile_cache: Option<&'a HierarchyConfig>,
    /// Slice count the run is expected to produce
    /// (`total_insts.div_ceil(slice_size)`), when known.
    pub expected_slices: Option<u64>,
}

/// Lints a complete sampling configuration.
pub fn lint_sampling_config(config: &SamplingConfig<'_>) -> Report {
    let mut report = Report::new();

    // SA020: slice size.
    if config.slice_size == 0 {
        report.push(Diagnostic::new(
            Rule::ZeroSliceSize,
            Location::config("slice_size"),
            "slice_size is 0; the profiling pass cannot slice the run",
        ));
    }

    report.merge(lint_simpoint_options(config.simpoint));

    // SA022: MaxK vs the expected slice count.
    if let Some(slices) = config.expected_slices {
        if config.simpoint.max_k > 0 && config.simpoint.max_k as u64 >= slices.max(1) {
            report.push(Diagnostic::new(
                Rule::MaxKExceedsSlices,
                Location::config("simpoint.max_k"),
                format!(
                    "MaxK = {} but the run only produces {} slice(s); \
                     clustering degenerates when k >= n",
                    config.simpoint.max_k, slices
                ),
            ));
        }

        // SA028: warmup window bounded by the run length.
        if config.warmup_slices >= slices.max(1) {
            report.push(Diagnostic::new(
                Rule::ExcessiveWarmup,
                Location::config("warmup_slices"),
                format!(
                    "warmup_slices = {} covers the whole {}-slice run",
                    config.warmup_slices, slices
                ),
            ));
        }
    }

    if let Some(cache) = config.profile_cache {
        report.merge(lint_hierarchy(cache, "profile_cache"));
    }

    report
}

/// Lints [`SimPointOptions`] (`SA021`, `SA023`–`SA027`).
pub fn lint_simpoint_options(options: &SimPointOptions) -> Report {
    let mut report = Report::new();
    if options.max_k == 0 {
        report.push(Diagnostic::new(
            Rule::BadMaxK,
            Location::config("simpoint.max_k"),
            "max_k is 0; at least one cluster is required",
        ));
    }
    if options.dim == 0 {
        report.push(Diagnostic::new(
            Rule::BadProjectionDim,
            Location::config("simpoint.dim"),
            "dim is 0; BBVs cannot be projected into zero dimensions",
        ));
    }
    if options.n_init == 0 {
        report.push(Diagnostic::new(
            Rule::ZeroInit,
            Location::config("simpoint.n_init"),
            "n_init is 0; no k-means restart would ever run",
        ));
    }
    if options.max_iter == 0 {
        report.push(Diagnostic::new(
            Rule::ZeroMaxIter,
            Location::config("simpoint.max_iter"),
            "max_iter is 0; Lloyd's algorithm would never assign points",
        ));
    }
    if !(options.bic_threshold > 0.0 && options.bic_threshold <= 1.0) {
        report.push(Diagnostic::new(
            Rule::BadBicThreshold,
            Location::config("simpoint.bic_threshold"),
            format!("bic_threshold is {}, outside (0, 1]", options.bic_threshold),
        ));
    }
    if options.sample_size == 0 {
        report.push(Diagnostic::new(
            Rule::ZeroSampleSize,
            Location::config("simpoint.sample_size"),
            "sample_size is 0; BIC scoring would see an empty subsample",
        ));
    }
    report
}

/// Validates a requested sampling-strategy spec string against the engine
/// registry (`SA130`). Used by serve request validation and the CLI
/// before a strategy string is turned into a pipeline configuration.
/// Accepts both bare registry names (`rss`) and parameterized specs
/// (`rss:set_size=8,replicates=9`); the diagnostic carries the parser's
/// description of what was wrong.
pub fn lint_strategy_name(name: &str) -> Report {
    let mut report = Report::new();
    if let Err(why) = sampsim_simpoint::StrategySpec::parse_spec(name) {
        report.push(Diagnostic::new(
            Rule::UnknownStrategy,
            Location::config("strategy"),
            format!("strategy '{name}' is rejected: {why}"),
        ));
    }
    report
}

/// Lints a cache hierarchy (`SA030`–`SA034`). `field` prefixes the
/// location (e.g. `profile_cache`).
pub fn lint_hierarchy(config: &HierarchyConfig, field: &str) -> Report {
    let mut report = Report::new();
    let levels: [(&str, &CacheConfig); 4] = [
        ("l1i", &config.l1i),
        ("l1d", &config.l1d),
        ("l2", &config.l2),
        ("l3", &config.l3),
    ];
    for (name, cache) in levels {
        report.merge(lint_cache_level(cache, &format!("{field}.{name}")));
    }

    // SA032: latency monotonicity along both lookup paths.
    let paths: [[(&str, u32); 2]; 4] = [
        [("l1i", config.l1i.latency), ("l2", config.l2.latency)],
        [("l1d", config.l1d.latency), ("l2", config.l2.latency)],
        [("l2", config.l2.latency), ("l3", config.l3.latency)],
        [("l3", config.l3.latency), ("mem", config.mem_latency)],
    ];
    for [(inner, inner_lat), (outer, outer_lat)] in paths {
        if inner_lat > outer_lat {
            report.push(Diagnostic::new(
                Rule::LatencyInversion,
                Location::config(format!("{field}.{inner}.latency")),
                format!(
                    "{inner} latency ({inner_lat} cycles) exceeds {outer} \
                     latency ({outer_lat} cycles)"
                ),
            ));
        }
    }

    // SA033: inner lines larger than outer lines.
    let lines: [[(&str, u64); 2]; 3] = [
        [("l1i", config.l1i.line_bytes), ("l2", config.l2.line_bytes)],
        [("l1d", config.l1d.line_bytes), ("l2", config.l2.line_bytes)],
        [("l2", config.l2.line_bytes), ("l3", config.l3.line_bytes)],
    ];
    for [(inner, inner_line), (outer, outer_line)] in lines {
        if inner_line > outer_line {
            report.push(Diagnostic::new(
                Rule::LineSizeMismatch,
                Location::config(format!("{field}.{inner}.line_bytes")),
                format!(
                    "{inner} lines ({inner_line} B) are larger than {outer} \
                     lines ({outer_line} B)"
                ),
            ));
        }
    }

    // SA034: TLBs.
    for (name, tlb) in [("itlb", &config.itlb), ("dtlb", &config.dtlb)] {
        report.merge(lint_tlb(tlb, &format!("{field}.{name}")));
    }
    report
}

fn lint_cache_level(cache: &CacheConfig, field: &str) -> Report {
    let mut report = Report::new();
    // SA030: line size.
    if !cache.line_bytes.is_power_of_two() {
        report.push(Diagnostic::new(
            Rule::LineNotPow2,
            Location::config(format!("{field}.line_bytes")),
            format!("line size {} B is not a power of two", cache.line_bytes),
        ));
    }
    // SA031: geometry. With a broken line size the derived set count is
    // meaningless, so only check geometry once the line size is sane.
    if cache.ways == 0 {
        report.push(Diagnostic::new(
            Rule::BadCacheGeometry,
            Location::config(format!("{field}.ways")),
            "associativity is 0",
        ));
    } else if cache.line_bytes.is_power_of_two() {
        let way_bytes = u64::from(cache.ways) * cache.line_bytes;
        if cache.size_bytes == 0 || !cache.size_bytes.is_multiple_of(way_bytes) {
            report.push(Diagnostic::new(
                Rule::BadCacheGeometry,
                Location::config(format!("{field}.size_bytes")),
                format!(
                    "capacity {} B is not a positive multiple of ways * line \
                     size ({} B)",
                    cache.size_bytes, way_bytes
                ),
            ));
        } else if !(cache.size_bytes / way_bytes).is_power_of_two() {
            report.push(Diagnostic::new(
                Rule::BadCacheGeometry,
                Location::config(format!("{field}.size_bytes")),
                format!(
                    "derived set count {} is not a power of two",
                    cache.size_bytes / way_bytes
                ),
            ));
        }
    }
    report
}

fn lint_tlb(tlb: &TlbConfig, field: &str) -> Report {
    let mut report = Report::new();
    if tlb.entries == 0 || !tlb.page_bytes.is_power_of_two() {
        report.push(Diagnostic::new(
            Rule::BadTlb,
            Location::config(field.to_string()),
            format!(
                "{} entries with {} B pages is not a valid TLB",
                tlb.entries, tlb.page_bytes
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_cache::configs;

    #[test]
    fn strategy_names_validate_against_the_registry() {
        for name in sampsim_simpoint::STRATEGY_NAMES {
            assert!(lint_strategy_name(name).is_empty(), "{name}");
        }
        let report = lint_strategy_name("frobnicate");
        assert!(report.has_errors());
        let diags = report.into_diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::UnknownStrategy);
        assert_eq!(diags[0].rule.code(), "SA130");
        assert!(diags[0].message.contains("frobnicate"));
    }

    #[test]
    fn parameterized_strategy_specs_validate_too() {
        assert!(lint_strategy_name("rss:set_size=8,replicates=9").is_empty());
        assert!(lint_strategy_name("stratified2p:strata=4").is_empty());
        let report = lint_strategy_name("rss:set_size=nope");
        let diags = report.into_diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::UnknownStrategy);
        assert!(
            diags[0].message.contains("set_size"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn default_options_and_paper_hierarchies_are_clean() {
        let options = SimPointOptions::default();
        for hierarchy in [configs::allcache_table1(), configs::i7_table3()] {
            let config = SamplingConfig {
                slice_size: 10_000,
                warmup_slices: 48,
                simpoint: &options,
                profile_cache: Some(&hierarchy),
                expected_slices: Some(1_000),
            };
            let report = lint_sampling_config(&config);
            assert!(report.is_empty(), "{:?}", report.diagnostics());
        }
    }
}

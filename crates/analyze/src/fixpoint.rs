//! A generic worklist fixpoint solver over join-semilattices.
//!
//! Dataflow passes ([`crate::cfg`], [`crate::absint`]) share one engine:
//! each graph node carries a lattice value, a transfer function produces
//! the value a node pushes to its successors, and [`solve`] iterates a
//! worklist until nothing changes. Termination is the usual argument —
//! every [`JoinSemiLattice::join`] either leaves the target unchanged
//! (node not re-queued) or moves it strictly up a finite-height lattice.
//!
//! The solver is deliberately small so that the branch-trace and
//! multi-threaded IR analyses planned in the roadmap can reuse it with
//! their own domains.

/// A value that can absorb another, reporting whether it changed.
pub trait JoinSemiLattice: Clone {
    /// Joins `other` into `self`; returns `true` when `self` changed
    /// (i.e. moved strictly up the lattice).
    fn join(&mut self, other: &Self) -> bool;
}

impl JoinSemiLattice for bool {
    fn join(&mut self, other: &Self) -> bool {
        let changed = !*self && *other;
        *self |= *other;
        changed
    }
}

/// A fixed-capacity bit set, the classic dataflow domain (used for
/// dominator sets, where join is intersection — see [`BitSet::intersect`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over `len` elements.
    pub fn empty(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set over `len` elements.
    pub fn full(len: usize) -> Self {
        let mut s = Self::empty(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    /// Inserts `i`; returns `true` if it was absent.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let absent = self.words[w] & b == 0;
        self.words[w] |= b;
        absent
    }

    /// Whether `i` is present.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Intersects with `other`; returns `true` when `self` shrank. This is
    /// the *meet* for must-analyses (dominators): run it through [`solve`]
    /// by treating the shrinking direction as "up".
    pub fn intersect(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Number of present elements.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the present elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|&i| self.contains(i))
    }
}

/// Runs a forward dataflow to fixpoint.
///
/// `states` holds the initial per-node values; `succs[n]` lists the
/// successors of node `n`; `transfer(n, &states[n])` computes the value
/// node `n` propagates. Every node is queued once initially; a node is
/// re-queued whenever its state absorbs new information.
pub fn solve<L, F>(states: &mut [L], succs: &[Vec<usize>], mut transfer: F)
where
    L: JoinSemiLattice,
    F: FnMut(usize, &L) -> L,
{
    let n = states.len();
    assert_eq!(succs.len(), n, "graph/state size mismatch");
    let mut queued = vec![true; n];
    let mut worklist: Vec<usize> = (0..n).collect();
    while let Some(node) = worklist.pop() {
        queued[node] = false;
        let out = transfer(node, &states[node]);
        for &s in &succs[node] {
            if states[s].join(&out) && !queued[s] {
                queued[s] = true;
                worklist.push(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_reachability_converges() {
        // 0 -> 1 -> 2 -> 1 (cycle), 3 isolated.
        let succs = vec![vec![1], vec![2], vec![1], vec![]];
        let mut reach = vec![true, false, false, false];
        solve(&mut reach, &succs, |_, &r| r);
        assert_eq!(reach, vec![true, true, true, false]);
    }

    #[test]
    fn bitset_ops() {
        let mut a = BitSet::empty(130);
        assert!(a.insert(0));
        assert!(a.insert(129));
        assert!(!a.insert(129));
        assert!(a.contains(129) && !a.contains(64));
        assert_eq!(a.count(), 2);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 129]);
        let full = BitSet::full(130);
        assert_eq!(full.count(), 130);
        let mut b = full.clone();
        assert!(b.intersect(&a));
        assert_eq!(b, a);
        assert!(!b.intersect(&full), "intersect with superset is a no-op");
    }
}

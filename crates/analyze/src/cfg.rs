//! The phase-transition graph: control-flow structure of a program's
//! schedule.
//!
//! A [`Program`]'s schedule is a linear segment list, but the *behavioural*
//! structure SimPoint exploits is the induced graph over phases: node =
//! phase, edge = observed transition between consecutive segments.
//! [`PhaseGraph`] builds that graph and runs the classical passes —
//! reachability from the entry phase, dominators, and strongly connected
//! components — on top of the shared [`crate::fixpoint`] engine (Tarjan for
//! SCCs). [`lint_phase_graph`] turns structural findings into `SA11x`
//! diagnostics.

use crate::diag::{Diagnostic, Location, Report, Rule};
use crate::fixpoint::{solve, BitSet};
use sampsim_workload::{Program, Schedule};

/// The phase-transition graph of one program, with analysis results.
#[derive(Debug, Clone)]
pub struct PhaseGraph {
    num_phases: usize,
    entry: Option<usize>,
    succs: Vec<Vec<usize>>,
    /// Number of schedule segments each phase owns (its *residencies*).
    residencies: Vec<u64>,
    reachable: Vec<bool>,
    dominators: Vec<BitSet>,
    scc_id: Vec<usize>,
    num_sccs: usize,
}

impl PhaseGraph {
    /// Builds the graph and runs all passes.
    pub fn build(program: &Program) -> Self {
        Self::from_schedule(program.phases().len(), program.schedule())
    }

    /// Builds from loose parts (phase count + schedule); out-of-range
    /// phase references are ignored here — `SA002` already covers them.
    pub fn from_schedule(num_phases: usize, schedule: &Schedule) -> Self {
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); num_phases];
        let mut residencies = vec![0u64; num_phases];
        let mut entry = None;
        let mut prev: Option<usize> = None;
        for seg in schedule.segments() {
            let p = seg.phase as usize;
            if p >= num_phases {
                prev = None;
                continue;
            }
            residencies[p] += 1;
            if entry.is_none() {
                entry = Some(p);
            }
            if let Some(q) = prev {
                if !succs[q].contains(&p) {
                    succs[q].push(p);
                }
            }
            prev = Some(p);
        }

        // Reachability from the entry phase: forward dataflow over the
        // two-point lattice.
        let mut reachable = vec![false; num_phases];
        if let Some(e) = entry {
            reachable[e] = true;
            solve(&mut reachable, &succs, |_, &r| r);
        }

        let dominators = compute_dominators(num_phases, entry, &succs, &reachable);
        let (scc_id, num_sccs) = tarjan_sccs(num_phases, &succs);

        Self {
            num_phases,
            entry,
            succs,
            residencies,
            reachable,
            dominators,
            scc_id,
            num_sccs,
        }
    }

    /// The first scheduled phase, if any.
    pub fn entry(&self) -> Option<usize> {
        self.entry
    }

    /// Deduplicated successor lists (observed phase transitions).
    pub fn successors(&self) -> &[Vec<usize>] {
        &self.succs
    }

    /// How many schedule segments each phase owns.
    pub fn residencies(&self) -> &[u64] {
        &self.residencies
    }

    /// Whether `phase` is reachable from the entry along transitions.
    pub fn is_reachable(&self, phase: usize) -> bool {
        self.reachable.get(phase).copied().unwrap_or(false)
    }

    /// Whether `dom` dominates `phase`: every transition path from the
    /// entry to `phase` passes through `dom`. Unreachable phases are
    /// dominated by everything (the standard vacuous convention).
    pub fn dominates(&self, dom: usize, phase: usize) -> bool {
        self.dominators.get(phase).is_some_and(|d| d.contains(dom))
    }

    /// The strongly-connected-component id of each phase.
    pub fn scc_ids(&self) -> &[usize] {
        &self.scc_id
    }

    /// Number of strongly connected components.
    pub fn num_sccs(&self) -> usize {
        self.num_sccs
    }

    /// Whether `phase` sits on a transition cycle: its SCC has more than
    /// one member, or it has a self-transition.
    pub fn is_cyclic(&self, phase: usize) -> bool {
        if phase >= self.num_phases {
            return false;
        }
        let same_scc = self
            .scc_id
            .iter()
            .filter(|&&id| id == self.scc_id[phase])
            .count();
        same_scc > 1 || self.succs[phase].contains(&phase)
    }
}

/// Iterative dominator computation: `dom(entry) = {entry}`, every other
/// reachable node starts at the full set and intersects its predecessors'
/// sets (plus itself) to fixpoint. Runs on the reverse graph so the
/// worklist engine's forward push applies.
fn compute_dominators(
    n: usize,
    entry: Option<usize>,
    succs: &[Vec<usize>],
    reachable: &[bool],
) -> Vec<BitSet> {
    let mut doms: Vec<BitSet> = (0..n).map(|_| BitSet::full(n)).collect();
    let Some(entry) = entry else {
        return doms;
    };
    let mut entry_only = BitSet::empty(n);
    entry_only.insert(entry);
    doms[entry] = entry_only;
    // Simple round-robin iteration: the graph is tiny (phases, not blocks),
    // so quadratic sweeps converge instantly and keep the meet direction
    // explicit.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, ss) in succs.iter().enumerate() {
        for &v in ss {
            preds[v].push(u);
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n {
            if v == entry || !reachable[v] {
                continue;
            }
            let mut next = BitSet::full(n);
            for &p in &preds[v] {
                if reachable[p] {
                    next.intersect(&doms[p]);
                }
            }
            next.insert(v);
            if next != doms[v] {
                doms[v] = next;
                changed = true;
            }
        }
    }
    doms
}

/// Iterative Tarjan SCC (explicit stack; no recursion on hostile input).
fn tarjan_sccs(n: usize, succs: &[Vec<usize>]) -> (Vec<usize>, usize) {
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut scc_id = vec![UNSET; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut num_sccs = 0usize;

    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        // Frames: (node, next-successor position).
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if *pos == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = succs[v].get(*pos) {
                *pos += 1;
                if index[w] == UNSET {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc_id[w] = num_sccs;
                        if w == v {
                            break;
                        }
                    }
                    num_sccs += 1;
                }
            }
        }
    }
    (scc_id, num_sccs)
}

/// Structural lints over the phase graph (`SA11x`).
///
/// `SA110` flags phases scheduled exactly once in a multi-phase program:
/// legitimate for startup/shutdown behaviour, but worth a note because
/// SimPoint's premise is recurring behaviour. All such phases of a
/// workload are folded into one diagnostic so a suite-wide lint stays
/// readable.
pub fn lint_phase_graph(name: &str, num_phases: usize, schedule: &Schedule) -> Report {
    let graph = PhaseGraph::from_schedule(num_phases, schedule);
    let mut report = Report::new();
    if num_phases > 1 {
        let once: Vec<String> = graph
            .residencies()
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r == 1)
            .map(|(p, _)| p.to_string())
            .collect();
        if !once.is_empty() {
            let message = if once.len() == 1 {
                format!(
                    "phase {} owns exactly one schedule segment and never recurs",
                    once[0]
                )
            } else {
                format!(
                    "{} of {num_phases} phases own exactly one schedule segment and \
                     never recur: {}",
                    once.len(),
                    once.join(", ")
                )
            };
            report.push(Diagnostic::new(
                Rule::NonRecurrentPhase,
                Location::workload_item(name, "schedule"),
                message,
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_workload::Segment;

    fn sched(phases: &[u32]) -> Schedule {
        Schedule::new(
            phases
                .iter()
                .map(|&p| Segment {
                    phase: p,
                    insts: 100,
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn reachability_and_entry() {
        // Phases 0,1 interleave; phase 2 exists but is never scheduled.
        let g = PhaseGraph::from_schedule(3, &sched(&[0, 1, 0, 1]));
        assert_eq!(g.entry(), Some(0));
        assert!(g.is_reachable(0) && g.is_reachable(1));
        assert!(!g.is_reachable(2));
        assert_eq!(g.residencies(), &[2, 2, 0]);
    }

    #[test]
    fn dominators_of_a_chain() {
        // 0 -> 1 -> 2 linear: 0 dominates all, 1 dominates 2.
        let g = PhaseGraph::from_schedule(3, &sched(&[0, 1, 2]));
        assert!(g.dominates(0, 2) && g.dominates(1, 2) && g.dominates(2, 2));
        assert!(!g.dominates(2, 1));
        assert!(g.dominates(0, 1) && !g.dominates(1, 0));
    }

    #[test]
    fn diamond_dominators() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3: neither 1 nor 2 dominates 3.
        let g = PhaseGraph::from_schedule(4, &sched(&[0, 1, 3, 0, 2, 3]));
        assert!(g.dominates(0, 3));
        assert!(!g.dominates(1, 3) && !g.dominates(2, 3));
    }

    #[test]
    fn sccs_find_the_interleave_cycle() {
        // 0 <-> 1 cycle, then a one-way exit to 2.
        let g = PhaseGraph::from_schedule(3, &sched(&[0, 1, 0, 1, 2]));
        assert!(g.is_cyclic(0) && g.is_cyclic(1));
        assert!(!g.is_cyclic(2));
        assert_eq!(g.scc_ids()[0], g.scc_ids()[1]);
        assert_ne!(g.scc_ids()[0], g.scc_ids()[2]);
    }

    #[test]
    fn self_transition_is_cyclic() {
        let g = PhaseGraph::from_schedule(2, &sched(&[0, 0, 1]));
        assert!(g.is_cyclic(0));
        assert!(!g.is_cyclic(1));
    }

    #[test]
    fn empty_schedule_graph() {
        let g = PhaseGraph::from_schedule(2, &Schedule::new(vec![]).unwrap());
        assert_eq!(g.entry(), None);
        assert!(!g.is_reachable(0));
        assert_eq!(g.num_sccs(), 2, "each node is its own trivial SCC");
    }

    #[test]
    fn non_recurrent_phase_noted() {
        let r = lint_phase_graph("w", 3, &sched(&[0, 1, 0, 2, 0]));
        assert!(r.fired(Rule::NonRecurrentPhase));
        assert_eq!(
            r.diagnostics().len(),
            1,
            "phases 1 and 2 fold into one note"
        );
        assert!(
            r.diagnostics()[0].message.contains("1, 2"),
            "{:?}",
            r.diagnostics()[0].message
        );
        let clean = lint_phase_graph("w", 2, &sched(&[0, 1, 0, 1]));
        assert!(clean.is_empty());
        let single = lint_phase_graph("w", 1, &sched(&[0]));
        assert!(single.is_empty(), "single-phase programs are exempt");
    }
}

//! The static BBV predictor and the static-vs-dynamic audit oracle
//! (`SA12x`).
//!
//! The schedule of a [`Program`] fully determines, for every profiling
//! slice, which phases execute and for how many instructions — *without
//! executing anything*. [`StaticBbvBounds::derive`] turns that into hard
//! per-slice bounds: the exact BBV total, the set of blocks that may
//! retire, and a cap on each block's count (a block cannot retire more
//! instructions than the slice grants to the phases that own it).
//!
//! Any dynamic profile that violates these bounds was not produced by a
//! correct execution of the program: [`audit_bbvs_static`] and
//! [`audit_cursors`] are therefore a standing oracle for executor bugs and
//! artifact corruption. [`AuditSummary`] is the durable on-disk form
//! (`artifacts/*.art`) that lets CI re-check shipped artifacts cheaply.

use crate::absint::gcd;
use crate::diag::{Diagnostic, Location, Report, Rule};
use sampsim_simpoint::bbv::Bbv;
use sampsim_util::codec::{DecodeError, Decoder, Encoder};
use sampsim_util::hash::Fnv64;
use sampsim_workload::{AddressPattern, Cursor, Program};
use std::collections::HashMap;

/// Stop an audit pass after this many findings: one real corruption often
/// violates thousands of slices, and the first few localize it.
pub const MAX_FINDINGS: usize = 32;

/// Per-slice block-frequency bounds derived statically from the schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticBbvBounds {
    slice_size: u64,
    total_insts: u64,
    /// For each slice, the `(phase, instructions)` spans that make it up,
    /// in schedule order. Spans of the same phase may repeat.
    slices: Vec<Vec<(u32, u64)>>,
}

impl StaticBbvBounds {
    /// Derives the bounds for `program` profiled at `slice_size`.
    ///
    /// # Panics
    ///
    /// Panics if `slice_size` is zero (`SA020`'s condition).
    pub fn derive(program: &Program, slice_size: u64) -> Self {
        assert!(slice_size > 0, "slice size must be positive");
        let total = program.total_insts();
        let num_slices = total.div_ceil(slice_size) as usize;
        let mut slices: Vec<Vec<(u32, u64)>> = vec![Vec::new(); num_slices];
        let mut pos = 0u64;
        for seg in program.schedule().segments() {
            let (start, end) = (pos, pos + seg.insts);
            let first = (start / slice_size) as usize;
            let last = ((end - 1) / slice_size) as usize;
            for (s, slice) in slices.iter_mut().enumerate().take(last + 1).skip(first) {
                let s_start = s as u64 * slice_size;
                let s_end = (s_start + slice_size).min(total);
                let overlap = end.min(s_end) - start.max(s_start);
                slice.push((seg.phase, overlap));
            }
            pos = end;
        }
        Self {
            slice_size,
            total_insts: total,
            slices,
        }
    }

    /// The slice size the bounds were derived at.
    pub fn slice_size(&self) -> u64 {
        self.slice_size
    }

    /// Number of slices the schedule proves.
    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    /// Exact instruction total of slice `i`.
    pub fn slice_total(&self, i: usize) -> u64 {
        self.slices[i].iter().map(|&(_, n)| n).sum()
    }

    /// The `(phase, instructions)` spans of slice `i`, in schedule order.
    pub fn slice_spans(&self, i: usize) -> &[(u32, u64)] {
        &self.slices[i]
    }

    /// Per-block instruction caps for slice `i`: block `b` may retire at
    /// most `caps[b]` instructions. Blocks absent from the map cannot
    /// retire at all in this slice.
    pub fn block_caps(&self, program: &Program, i: usize) -> HashMap<u32, u64> {
        let mut caps: HashMap<u32, u64> = HashMap::new();
        for &(phase, insts) in &self.slices[i] {
            if let Some(p) = program.phases().get(phase as usize) {
                for &b in &p.blocks {
                    *caps.entry(b).or_insert(0) += insts;
                }
            }
        }
        caps
    }

    /// Content digest of the bounds (stable across runs; stored in
    /// [`AuditSummary`] so shipped artifacts pin the derivation).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.slice_size);
        h.write_u64(self.total_insts);
        h.write_u64(self.slices.len() as u64);
        for spans in &self.slices {
            h.write_u64(spans.len() as u64);
            for &(p, n) in spans {
                h.write_u64(u64::from(p));
                h.write_u64(n);
            }
        }
        h.finish()
    }
}

/// Checks a dynamic per-slice BBV profile against static bounds
/// (`SA120`–`SA122`). Sound: a clean execution can never fire these.
pub fn audit_bbvs_static(program: &Program, bounds: &StaticBbvBounds, bbvs: &[Bbv]) -> Report {
    let name = program.name();
    let mut report = Report::new();
    if bbvs.len() != bounds.num_slices() {
        report.push(Diagnostic::new(
            Rule::BbvTotalMismatch,
            Location::workload(name),
            format!(
                "profile has {} slice(s) but the schedule proves {}",
                bbvs.len(),
                bounds.num_slices()
            ),
        ));
        return report;
    }
    for (i, bbv) in bbvs.iter().enumerate() {
        if report.diagnostics().len() >= MAX_FINDINGS {
            break;
        }
        let loc = || Location::workload_item(name, format!("slice {i}"));
        let expected = bounds.slice_total(i) as f64;
        let total = bbv.l1_norm();
        if (total - expected).abs() > 0.5 {
            report.push(Diagnostic::new(
                Rule::BbvTotalMismatch,
                loc(),
                format!("slice {i} BBV totals {total} but the schedule proves {expected}"),
            ));
        }
        let caps = bounds.block_caps(program, i);
        for &(block, count) in bbv.entries() {
            match caps.get(&block) {
                None => report.push(Diagnostic::new(
                    Rule::BbvBlockOutsideSlice,
                    loc(),
                    format!(
                        "slice {i} counts block {block}, which no phase scheduled in \
                         this slice owns"
                    ),
                )),
                Some(&cap) if count > cap as f64 + 0.5 => {
                    report.push(Diagnostic::new(
                        Rule::BbvCountExceedsBound,
                        loc(),
                        format!(
                            "slice {i} counts {count} instructions in block {block}; \
                             the static cap is {cap}"
                        ),
                    ));
                }
                Some(_) => {}
            }
        }
    }
    report
}

/// Checks slice-start checkpoints against the schedule and the stream
/// state domains (`SA123`, `SA125`).
pub fn audit_cursors(program: &Program, slice_size: u64, cursors: &[Cursor]) -> Report {
    let name = program.name();
    let mut report = Report::new();
    let segments = program.schedule().segments();
    let mut prefix = Vec::with_capacity(segments.len() + 1);
    let mut acc = 0u64;
    prefix.push(0u64);
    for seg in segments {
        acc += seg.insts;
        prefix.push(acc);
    }
    // Global stream table: (pattern, region size) in phase order.
    let specs: Vec<&sampsim_workload::StreamSpec> = program
        .phases()
        .iter()
        .flat_map(|p| p.streams.iter())
        .collect();

    for (i, cursor) in cursors.iter().enumerate() {
        if report.diagnostics().len() >= MAX_FINDINGS {
            break;
        }
        let loc = || Location::workload_item(name, format!("slice {i} cursor"));
        let mismatch = |why: String| Diagnostic::new(Rule::CursorScheduleMismatch, loc(), why);

        if cursor.retired != i as u64 * slice_size {
            report.push(mismatch(format!(
                "cursor {i} claims {} retired instructions; slice starts prove {}",
                cursor.retired,
                i as u64 * slice_size
            )));
            continue;
        }
        let seg = cursor.seg_idx as usize;
        if seg >= segments.len() {
            report.push(mismatch(format!(
                "cursor {i} sits in segment {seg} of {}",
                segments.len()
            )));
            continue;
        }
        if cursor.seg_retired > segments[seg].insts {
            report.push(mismatch(format!(
                "cursor {i} retired {} instructions inside a {}-instruction segment",
                cursor.seg_retired, segments[seg].insts
            )));
            continue;
        }
        if prefix[seg] + cursor.seg_retired != cursor.retired {
            report.push(mismatch(format!(
                "cursor {i}: segment {seg} starts at {} and the cursor is {} in, \
                 which contradicts its retired count {}",
                prefix[seg], cursor.seg_retired, cursor.retired
            )));
            continue;
        }
        if cursor.streams.len() != program.num_streams() as usize
            || cursor.phase_sel.len() != program.phases().len()
        {
            report.push(mismatch(format!(
                "cursor {i} carries {} stream(s) and {} phase counter(s); the program \
                 has {} and {}",
                cursor.streams.len(),
                cursor.phase_sel.len(),
                program.num_streams(),
                program.phases().len()
            )));
            continue;
        }

        // SA125: pattern-reachable stream-state domains.
        for (g, spec) in specs.iter().enumerate() {
            let pos = cursor.streams[g];
            let size = spec.region.size;
            let bad = match spec.pattern {
                // Stride walks keep pos < size and pos a multiple of
                // gcd(stride, size); gcd(0, size) = size forces pos == 0.
                AddressPattern::Stride { stride } => {
                    pos >= size || pos % gcd(stride, size).max(1) != 0
                }
                // The executor never advances the position of
                // distribution-sampled streams.
                AddressPattern::Random | AddressPattern::SkewedRandom { .. } => pos != 0,
                // The chase state is a full-width scramble; any value is
                // reachable.
                AddressPattern::PointerChase => false,
            };
            if bad {
                report.push(Diagnostic::new(
                    Rule::StreamStateOutsideDomain,
                    Location::workload_item(name, format!("slice {i} cursor, stream {g}")),
                    format!(
                        "stream {g} state {pos} is unreachable for its pattern over a \
                         {size}-byte region"
                    ),
                ));
            }
        }
    }
    report
}

/// Magic bytes of `.art` audit artifacts (`"SAUD"`).
pub const AUDIT_MAGIC: u32 = u32::from_be_bytes(*b"SAUD");
/// Current `.art` format version.
pub const AUDIT_VERSION: u16 = 1;

/// The durable audit artifact: enough derived facts to re-verify that a
/// benchmark's program build and static bounds are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditSummary {
    /// Content digest of the program the bounds were derived from.
    pub program_digest: u64,
    /// Bit pattern of the `f64` build scale.
    pub scale_bits: u64,
    /// Whole-run dynamic instruction count.
    pub total_insts: u64,
    /// Number of basic blocks.
    pub num_blocks: u32,
    /// Number of phases.
    pub num_phases: u32,
    /// Slice size the bounds were derived at.
    pub slice_size: u64,
    /// Number of slices the schedule proves.
    pub num_slices: u64,
    /// [`StaticBbvBounds::digest`] of the derived bounds.
    pub bounds_digest: u64,
}

impl AuditSummary {
    /// Captures the summary for `program` built at `scale`.
    pub fn capture(program: &Program, scale: f64, bounds: &StaticBbvBounds) -> Self {
        Self {
            program_digest: program.digest(),
            scale_bits: scale.to_bits(),
            total_insts: program.total_insts(),
            num_blocks: program.blocks().len() as u32,
            num_phases: program.phases().len() as u32,
            slice_size: bounds.slice_size(),
            num_slices: bounds.num_slices() as u64,
            bounds_digest: bounds.digest(),
        }
    }

    /// Serializes with the `.art` header.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::with_header(AUDIT_MAGIC, AUDIT_VERSION);
        enc.put_u64(self.program_digest);
        enc.put_u64(self.scale_bits);
        enc.put_u64(self.total_insts);
        enc.put_u32(self.num_blocks);
        enc.put_u32(self.num_phases);
        enc.put_u64(self.slice_size);
        enc.put_u64(self.num_slices);
        enc.put_u64(self.bounds_digest);
        enc.into_bytes()
    }

    /// Deserializes, rejecting bad headers, truncation and trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Decoder::with_header(bytes, AUDIT_MAGIC, AUDIT_VERSION)?;
        let out = Self {
            program_digest: dec.take_u64()?,
            scale_bits: dec.take_u64()?,
            total_insts: dec.take_u64()?,
            num_blocks: dec.take_u32()?,
            num_phases: dec.take_u32()?,
            slice_size: dec.take_u64()?,
            num_slices: dec.take_u64()?,
            bounds_digest: dec.take_u64()?,
        };
        if !dec.is_exhausted() {
            return Err(DecodeError::Invalid("trailing bytes after audit summary"));
        }
        Ok(out)
    }

    /// Differentially checks this stored summary against a freshly built
    /// program and freshly derived bounds. Any mismatch means the shipped
    /// artifact no longer corresponds to the code (`SA047`).
    pub fn check(
        &self,
        path: &str,
        program: &Program,
        scale: f64,
        bounds: &StaticBbvBounds,
    ) -> Report {
        let fresh = AuditSummary::capture(program, scale, bounds);
        let mut report = Report::new();
        let fields: [(&str, u64, u64); 8] = [
            ("program_digest", self.program_digest, fresh.program_digest),
            ("scale_bits", self.scale_bits, fresh.scale_bits),
            ("total_insts", self.total_insts, fresh.total_insts),
            (
                "num_blocks",
                u64::from(self.num_blocks),
                u64::from(fresh.num_blocks),
            ),
            (
                "num_phases",
                u64::from(self.num_phases),
                u64::from(fresh.num_phases),
            ),
            ("slice_size", self.slice_size, fresh.slice_size),
            ("num_slices", self.num_slices, fresh.num_slices),
            ("bounds_digest", self.bounds_digest, fresh.bounds_digest),
        ];
        for (field, stored, derived) in fields {
            if stored != derived {
                report.push(Diagnostic::new(
                    Rule::DigestMismatch,
                    Location::artifact(path),
                    format!(
                        "stored {field} is {stored:#x} but the current build derives \
                         {derived:#x}"
                    ),
                ));
            }
        }
        report
    }
}

/// Wraps a `.art` decode failure as a diagnostic (`SA124`).
pub fn diagnose_unreadable_artifact(path: &str, err: &DecodeError) -> Diagnostic {
    Diagnostic::new(
        Rule::ArtifactUnreadable,
        Location::artifact(path),
        format!("failed to decode audit artifact: {err:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};

    fn program() -> Program {
        WorkloadSpec::builder("static-bbv", 11)
            .total_insts(50_000)
            .phase(PhaseSpec::balanced(1.0))
            .phase(PhaseSpec::memory_bound(1.0))
            .build()
            .build()
    }

    #[test]
    fn bounds_partition_the_run_exactly() {
        let p = program();
        let bounds = StaticBbvBounds::derive(&p, 1000);
        assert_eq!(bounds.num_slices() as u64, p.total_insts().div_ceil(1000));
        let total: u64 = (0..bounds.num_slices())
            .map(|i| bounds.slice_total(i))
            .sum();
        assert_eq!(total, p.total_insts(), "spans partition the whole run");
        for i in 0..bounds.num_slices() - 1 {
            assert_eq!(bounds.slice_total(i), 1000);
        }
    }

    #[test]
    fn digest_tracks_content() {
        let p = program();
        let a = StaticBbvBounds::derive(&p, 1000);
        let b = StaticBbvBounds::derive(&p, 1000);
        assert_eq!(a.digest(), b.digest());
        let c = StaticBbvBounds::derive(&p, 2000);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn summary_roundtrip_and_corruption() {
        let p = program();
        let bounds = StaticBbvBounds::derive(&p, 1000);
        let summary = AuditSummary::capture(&p, 0.5, &bounds);
        let bytes = summary.to_bytes();
        assert_eq!(AuditSummary::from_bytes(&bytes).unwrap(), summary);
        assert!(summary.check("x.art", &p, 0.5, &bounds).is_empty());

        // Flip the last payload byte: decodes, but bounds_digest mismatches.
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        let corrupt = AuditSummary::from_bytes(&bad).unwrap();
        let report = corrupt.check("x.art", &p, 0.5, &bounds);
        assert!(report.fired(Rule::DigestMismatch));

        // Corrupt the header: unreadable.
        let mut hdr = bytes.clone();
        hdr[0] ^= 0xFF;
        assert!(AuditSummary::from_bytes(&hdr).is_err());

        // Truncate: unreadable.
        assert!(AuditSummary::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }
}

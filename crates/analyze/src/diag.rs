//! The diagnostics framework: rule codes, severities, locations and the
//! [`Report`] that analysis passes accumulate into.

use std::fmt;

/// How serious a diagnostic is.
///
/// `Error` means the checked object will make the sampling pipeline panic,
/// produce meaningless numbers, or both. `Warning` flags configurations
/// that run but are statistically degenerate (the paper's projection
/// plateaus and weight-skew artifacts). `Note` is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only; never affects exit status.
    Note,
    /// Suspicious but runnable; fails under `--deny-warnings`.
    Warning,
    /// Invalid input; the pipeline must not run.
    Error,
}

impl Severity {
    /// Lowercase label used by both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

macro_rules! rules {
    ($( $(#[$meta:meta])* $variant:ident => ($code:literal, $sev:ident, $summary:literal, $help:literal), )*) => {
        /// Every lint rule, identified by a stable `SAxxx` code.
        ///
        /// Codes are grouped by family: `SA00x`/`SA01x` workload IR lints,
        /// `SA02x` sampling-configuration lints, `SA03x` cache-geometry
        /// lints, `SA04x` artifact audits, `SA10x` memory abstract
        /// interpretation, `SA11x` phase-graph structure, `SA12x`
        /// static-vs-dynamic audit oracle, `SA13x` sampling-strategy
        /// validation, `SA14x` statistical soundness. See
        /// `docs/lint-rules.md` and `docs/static-analysis.md` for the full
        /// catalogue with rationale and examples.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Rule {
            $( $(#[$meta])* $variant, )*
        }

        impl Rule {
            /// All rules, in code order.
            pub const ALL: &'static [Rule] = &[ $( Rule::$variant, )* ];

            /// The stable `SAxxx` code.
            pub fn code(self) -> &'static str {
                match self { $( Rule::$variant => $code, )* }
            }

            /// The rule's default severity.
            pub fn severity(self) -> Severity {
                match self { $( Rule::$variant => Severity::$sev, )* }
            }

            /// One-line summary of what the rule checks.
            pub fn summary(self) -> &'static str {
                match self { $( Rule::$variant => $summary, )* }
            }

            /// Help text suggesting a fix.
            pub fn help(self) -> &'static str {
                match self { $( Rule::$variant => $help, )* }
            }

            /// Resolves a stable `SAxxx` code back to its rule.
            pub fn from_code(code: &str) -> Option<Rule> {
                match code { $( $code => Some(Rule::$variant), )* _ => None }
            }

            /// The rule's one-paragraph description: code, default
            /// severity, summary and help, assembled from the same fields
            /// the renderers and `docs/lint-rules.md` use. This is the
            /// single source of truth behind `sampsim lint --explain`.
            pub fn explain(self) -> String {
                format!(
                    "{} ({}): {}.\n\n{}.",
                    self.code(),
                    self.severity().label(),
                    self.summary(),
                    self.help()
                )
            }
        }
    };
}

rules! {
    // ---- workload IR lints (SA00x / SA01x) ----
    /// A phase names a basic-block id outside the program's block table.
    DanglingBlockRef => ("SA001", Error,
        "phase references a basic block that does not exist",
        "every id in `Phase::blocks` must be < the program's block count"),
    /// A schedule segment names a phase outside the phase table.
    DanglingPhaseRef => ("SA002", Error,
        "schedule references a phase that does not exist",
        "every `Segment::phase` must be < the program's phase count"),
    /// A phase exists but the schedule never runs it.
    UnreachablePhase => ("SA003", Warning,
        "phase is never scheduled and can never execute",
        "drop the phase or give it a schedule segment; unreachable phases \
         skew per-phase weight accounting"),
    /// A phase owns no basic blocks.
    EmptyPhase => ("SA004", Error,
        "phase has no basic blocks",
        "a phase must own at least one block; the executor cannot select \
         from an empty set"),
    /// The block-selection probability row of a phase is malformed.
    BadBlockWeights => ("SA005", Error,
        "block-selection weights do not form a valid probability row",
        "weights must parallel `blocks`, be finite and positive, and sum \
         to a positive value so normalization yields a distribution \
         summing to 1.0"),
    /// `selection_noise` lies outside `[0, 1]`.
    BadSelectionNoise => ("SA006", Error,
        "selection noise is outside [0, 1]",
        "`Phase::selection_noise` is a probability; clamp it to [0, 1]"),
    /// A memory instruction indexes a stream the phase does not own.
    DanglingStreamRef => ("SA007", Error,
        "instruction references an address stream the phase does not own",
        "stream operands must be < the phase's stream count"),
    /// Two stream working sets overlap in the address space.
    OverlappingStreamRegions => ("SA008", Warning,
        "two address-stream regions overlap",
        "overlapping working sets alias in the cache model and inflate \
         apparent locality; allocate disjoint regions"),
    /// The schedule runs nothing.
    EmptySchedule => ("SA009", Warning,
        "schedule is empty; the program retires no instructions",
        "an empty schedule produces zero slices and the SimPoint analysis \
         will reject the run"),
    /// A basic block contains no instructions.
    EmptyBlock => ("SA010", Error,
        "basic block has no instructions",
        "blocks must hold at least one instruction (the trailing branch)"),
    /// Phase `stream_base` values are not densely packed.
    StreamBaseMismatch => ("SA011", Error,
        "phase stream_base does not match the running stream count",
        "stream bases must be densely packed: each phase's base equals the \
         total stream count of all earlier phases"),
    /// A stream's working-set region has zero size.
    ZeroSizeRegion => ("SA012", Error,
        "address-stream region has zero size",
        "a stream must cover at least one byte; zero-size regions make \
         address generation divide by zero"),
    /// A basic block's last instruction is not a branch.
    MissingTerminalBranch => ("SA013", Error,
        "basic block does not end in a branch",
        "the classical basic-block definition requires a terminating \
         branch; the executor's control flow depends on it"),
    /// A schedule segment retires zero instructions.
    ZeroLengthSegment => ("SA014", Error,
        "schedule segment retires zero instructions",
        "empty segments make seek arithmetic ambiguous; drop the segment \
         or give it a positive instruction count"),

    // ---- sampling-configuration lints (SA02x) ----
    /// `slice_size` is zero.
    ZeroSliceSize => ("SA020", Error,
        "slice size is zero",
        "the profiling pass divides execution into slices of this length; \
         it must be positive"),
    /// `MaxK` is zero.
    BadMaxK => ("SA021", Error,
        "MaxK is zero; clustering needs at least one cluster",
        "set `SimPointOptions::max_k` >= 1 (the paper settles on 35)"),
    /// `MaxK` is not below the expected slice count.
    MaxKExceedsSlices => ("SA022", Warning,
        "MaxK is not smaller than the expected slice count",
        "with k >= n every slice can form its own cluster, the BIC sweep \
         degenerates and projection plateaus appear; lower MaxK or use \
         smaller slices"),
    /// The projected dimensionality is zero.
    BadProjectionDim => ("SA023", Error,
        "projected dimensionality is zero",
        "set `SimPointOptions::dim` >= 1 (SimPoint uses 15)"),
    /// No k-means restarts requested.
    ZeroInit => ("SA024", Error,
        "k-means restart count is zero",
        "set `SimPointOptions::n_init` >= 1; zero restarts runs no \
         clustering at all"),
    /// No Lloyd iterations allowed.
    ZeroMaxIter => ("SA025", Error,
        "Lloyd iteration cap is zero",
        "set `SimPointOptions::max_iter` >= 1 so k-means can assign \
         points to clusters"),
    /// BIC threshold outside `(0, 1]`.
    BadBicThreshold => ("SA026", Error,
        "BIC threshold is outside (0, 1]",
        "`bic_threshold` is the score-range fraction used to choose k \
         (SimPoint uses 0.9); it must be in (0, 1]"),
    /// Subsample size is zero.
    ZeroSampleSize => ("SA027", Error,
        "BIC scoring sample size is zero",
        "`sample_size` bounds the slices scored per candidate k; zero \
         would score an empty subsample"),
    /// Warmup window at least as long as the whole run.
    ExcessiveWarmup => ("SA028", Warning,
        "warmup window is not smaller than the expected slice count",
        "warming with the entire execution defeats sampling; use a warmup \
         window well below the slice count (the paper uses ~48 slices)"),

    // ---- cache-geometry lints (SA03x) ----
    /// A cache line size is not a power of two.
    LineNotPow2 => ("SA030", Error,
        "cache line size is not a power of two",
        "index/offset extraction uses bit masks; line size must be a \
         power of two"),
    /// Ways/capacity/line size are mutually inconsistent.
    BadCacheGeometry => ("SA031", Error,
        "cache geometry is inconsistent",
        "capacity must be a positive multiple of ways * line size and \
         the resulting set count must be a power of two"),
    /// Latencies do not increase monotonically outward.
    LatencyInversion => ("SA032", Warning,
        "cache latency is not monotone across levels",
        "an inner level slower than an outer one (or an L3 slower than \
         memory) is almost always a configuration typo"),
    /// An inner level has larger lines than an outer one.
    LineSizeMismatch => ("SA033", Note,
        "inner cache level has larger lines than an outer level",
        "a demand fill from the outer level cannot fill a whole inner \
         line; verify this is intentional"),
    /// A TLB has zero entries or a non-power-of-two page size.
    BadTlb => ("SA034", Error,
        "TLB configuration is invalid",
        "a TLB needs at least one entry and a power-of-two page size"),

    // ---- artifact audits (SA04x) ----
    /// Point weights do not sum to ~1.0.
    WeightSumDrift => ("SA040", Error,
        "simulation-point weights do not sum to 1.0",
        "weighted metric aggregation assumes unit total weight; \
         renormalize the point set"),
    /// A weight is non-finite, non-positive or above 1.
    BadWeight => ("SA041", Error,
        "simulation-point weight is outside (0, 1]",
        "each weight is the represented fraction of execution and must \
         be a finite value in (0, 1]"),
    /// A point's slice index is out of range.
    PointOutOfRange => ("SA042", Error,
        "simulation point references a slice beyond the run",
        "point slice indices must be < the number of profiled slices"),
    /// A cluster assignment or point cluster id is out of range.
    BadAssignment => ("SA043", Error,
        "cluster id is outside the chosen k",
        "assignments and point cluster ids must be < the result's k"),
    /// A cluster in `0..k` holds no slices.
    EmptyCluster => ("SA044", Warning,
        "a cluster contains no slices",
        "empty clusters mean the chosen k overstates the distinct \
         behaviours; the BIC sweep may have been run on degenerate data"),
    /// A BBV names a block id beyond the program's block table.
    BbvDimMismatch => ("SA045", Error,
        "basic-block vector references a block beyond the program",
        "BBV dimensions must agree with the profiled program's block \
         count across all slices"),
    /// A slice's BBV is empty.
    EmptyBbv => ("SA046", Warning,
        "slice has an empty basic-block vector",
        "a slice that retired no instructions distorts normalization; \
         check the slicing boundaries"),
    /// A pinball's program digest does not match the program.
    DigestMismatch => ("SA047", Error,
        "pinball was captured from a different program build",
        "the pinball's content digest must match the program it is \
         replayed against; rebuild the pinballs"),
    /// A regional pinball's cursor/slice bookkeeping is inconsistent.
    MisalignedRegion => ("SA048", Error,
        "regional pinball is not aligned to its slice",
        "`start.retired` must equal `slice_index * length` and the region \
         must end at or before the program's end"),
    /// Two points share a slice or a cluster.
    DuplicatePoints => ("SA049", Error,
        "two simulation points share a slice or cluster",
        "each occupied cluster contributes exactly one representative \
         slice; duplicates double-count execution weight"),

    // ---- memory abstract interpretation (SA10x) ----
    /// A stride maps every access of a stream into one cache set.
    SetAliasingStride => ("SA100", Warning,
        "stride aliases all accesses of a stream into a single cache set",
        "the stride is a multiple of sets * line_bytes, so the stream \
         conflict-misses in one set while the rest of the cache idles; \
         pick a stride coprime to the set span or shrink the region"),
    /// A stride degenerates the walk to a single address or skips the
    /// region entirely.
    DegenerateStride => ("SA101", Warning,
        "stride degenerates the stream's walk",
        "a zero stride pins the stream to one address and a stride >= the \
         region size wraps every step; neither exercises the working set \
         the region declares"),
    /// A declared stream is never referenced by any instruction.
    DeadStream => ("SA102", Note,
        "address stream is never referenced by the phase's instructions",
        "the stream's working set is declared but never touched; drop it \
         or add memory instructions that use it"),
    /// The program's code span exceeds the L1I capacity.
    CodeFootprintExceedsL1I => ("SA103", Note,
        "static code footprint exceeds the L1 instruction cache",
        "instruction fetch will miss persistently; this is realistic for \
         large codes but worth confirming against the modelled frontend"),
    /// A page-sized stride sweeps more pages than the DTLB holds.
    TlbThrashingStride => ("SA104", Warning,
        "stride touches a new page every access across more pages than \
         the DTLB holds",
        "every access of the stream costs a TLB miss; use a sub-page \
         stride or shrink the region below entries * page_bytes"),

    // ---- phase-graph structure (SA11x) ----
    /// A phase appears exactly once in the schedule of a multi-phase
    /// program.
    NonRecurrentPhase => ("SA110", Note,
        "phase is scheduled exactly once and never recurs",
        "SimPoint exploits recurring behaviour; a once-only phase is \
         either startup/shutdown code (fine) or a sign the interleave \
         generator failed to revisit it"),

    // ---- static-vs-dynamic audit oracle (SA12x) ----
    /// A profiled BBV counts a block its slice's phases do not own.
    BbvBlockOutsideSlice => ("SA120", Error,
        "profiled BBV counts a block no scheduled phase of the slice owns",
        "the static schedule proves which blocks can retire in each \
         slice; a count outside that set means an executor bug or a \
         corrupted profile"),
    /// A profiled block count exceeds its static upper bound.
    BbvCountExceedsBound => ("SA121", Error,
        "profiled block count exceeds its static per-slice bound",
        "a block cannot retire more instructions than the schedule \
         allots to the phases that own it; the profile is inconsistent \
         with the program"),
    /// A slice's BBV total does not equal the slice's instruction count.
    BbvTotalMismatch => ("SA122", Error,
        "slice BBV total does not match the slice's instruction count",
        "every retired instruction belongs to exactly one block, so \
         per-slice BBV totals are fully determined by the schedule"),
    /// A captured cursor is inconsistent with the schedule.
    CursorScheduleMismatch => ("SA123", Error,
        "captured cursor is inconsistent with the program schedule",
        "a cursor's (segment, offset) pair must re-derive its retired \
         count from the schedule's prefix sums; a mismatch means the \
         checkpoint is corrupt or from a different build"),
    /// An audit artifact failed to decode.
    ArtifactUnreadable => ("SA124", Error,
        "audit artifact is unreadable or truncated",
        "the artifact failed header or payload decoding; regenerate it \
         with `sampsim audit --update`"),
    /// A captured stream state violates its pattern's reachable domain.
    StreamStateOutsideDomain => ("SA125", Error,
        "captured stream state is outside its pattern's reachable domain",
        "stride walks keep pos < size and pos a multiple of \
         gcd(stride, size); random streams never advance pos; a state \
         outside that domain cannot arise from execution"),

    // ---- sampling-strategy validation (SA13x) ----
    /// A requested sampling-strategy name is not in the registry.
    UnknownStrategy => ("SA130", Error,
        "requested sampling strategy is not registered",
        "strategy names are resolved against the engine registry \
         (simpoint, stratified2p, rss); check the spelling or see \
         docs/sampling-strategies.md for how to register a new one"),

    // ---- statistical soundness (SA14x) ----
    /// The predicted effective sample count is below CLT plausibility.
    SampleBelowClt => ("SA140", Warning,
        "predicted sample size is below CLT plausibility (n < 30)",
        "normal-theory confidence intervals need roughly 30 independent \
         samples per estimate; raise MaxK, the stratified sample budget \
         or the rss set size / replicate count, or use smaller slices so \
         more regions exist to sample"),
    /// The clustering strategy cannot compress: MaxK covers every slice.
    ClusteringDegenerate => ("SA141", Warning,
        "MaxK is not smaller than the slice count; clustering degenerates \
         to a census",
        "with k >= n the strategy selects every slice and the plan \
         predicts no speedup; lower MaxK or use smaller slices so the \
         clustering has behaviour to compress"),
    /// A stratum receives too few pilot or final samples to estimate
    /// spread.
    StratumStarved => ("SA142", Error,
        "a stratum receives fewer than 2 pilot or final samples",
        "two-phase allocation estimates per-stratum spread from the pilot; \
         a 0- or 1-sample stratum has no estimable variance and Neyman \
         allocation silently degenerates to its proportional fallback; \
         lower the strata count or raise the pilot/sample budget"),
    /// The static weight-concentration bound allows one region to
    /// dominate the estimate.
    WeightConcentration => ("SA143", Warning,
        "a single region's weight can reach or exceed the concentration \
         bound (0.5)",
        "when one region can carry half the estimate, a single \
         unrepresentative pick dominates every metric; raise the sample \
         budget, the strata count or the rss set size so per-region \
         weight is bounded lower"),
    /// The rss replicate budget cannot produce error bars.
    InsufficientReplicates => ("SA144", Error,
        "replicate budget is below 2; no error bars can be computed",
        "ranked-set confidence intervals come from the spread across \
         replicates; fewer than 2 replicates makes every CI half-width \
         exactly 0, which misreports certainty; set replicates >= 2"),
    /// The predicted replay cost exceeds the whole-program run.
    CostExceedsWhole => ("SA145", Warning,
        "predicted simulated-instruction cost exceeds the whole-program \
         run",
        "selected regions plus their warmup windows replay more \
         instructions than simulating the program outright; sampling is \
         slower than truth here — lower the warmup window, the sample \
         budget or MaxK"),

    // ---- resource footprint (SA15x) ----
    /// The materialized profile (BBVs + projected rows) exceeds the
    /// memory budget.
    MaterializedFootprint => ("SA150", Warning,
        "predicted materialized profile exceeds the memory budget",
        "profiling this many slices materializes per-slice BBVs and \
         projected rows beyond the configured budget; use larger slices \
         to cut the slice count, or the streaming clustering path \
         (`--kmeans-mode minibatch`) whose footprint is bounded by the \
         batch size instead of the slice count"),
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// What a diagnostic is about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// A workload, optionally a specific item inside it
    /// (`phase 3`, `block 17`...).
    Workload {
        /// Workload (benchmark) id.
        workload: String,
        /// Item within the workload, empty for the workload itself.
        item: String,
    },
    /// A configuration field, dotted (`simpoint.max_k`, `cache.l2`).
    Config {
        /// Dotted field path.
        field: String,
    },
    /// A sampling artifact: a point set, pinball file or BBV matrix.
    Artifact {
        /// Artifact path or description.
        path: String,
    },
}

impl Location {
    /// Location of a whole workload.
    pub fn workload(id: impl Into<String>) -> Self {
        Location::Workload {
            workload: id.into(),
            item: String::new(),
        }
    }

    /// Location of an item inside a workload.
    pub fn workload_item(id: impl Into<String>, item: impl Into<String>) -> Self {
        Location::Workload {
            workload: id.into(),
            item: item.into(),
        }
    }

    /// Location of a configuration field.
    pub fn config(field: impl Into<String>) -> Self {
        Location::Config {
            field: field.into(),
        }
    }

    /// Location of an artifact.
    pub fn artifact(path: impl Into<String>) -> Self {
        Location::Artifact { path: path.into() }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Workload { workload, item } if item.is_empty() => {
                write!(f, "workload `{workload}`")
            }
            Location::Workload { workload, item } => {
                write!(f, "workload `{workload}`, {item}")
            }
            Location::Config { field } => write!(f, "config `{field}`"),
            Location::Artifact { path } => write!(f, "artifact `{path}`"),
        }
    }
}

/// One finding of an analysis pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Severity (the rule's default unless a pass escalates it).
    pub severity: Severity,
    /// What the finding is about.
    pub location: Location,
    /// Specific message with the offending values.
    pub message: String,
    /// Help text suggesting a fix (the rule's default).
    pub help: &'static str,
}

impl Diagnostic {
    /// Creates a diagnostic with the rule's default severity and help.
    pub fn new(rule: Rule, location: Location, message: impl Into<String>) -> Self {
        Self {
            rule,
            severity: rule.severity(),
            location,
            message: message.into(),
            help: rule.help(),
        }
    }
}

/// An ordered collection of diagnostics plus summary accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one diagnostic.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diagnostics.push(diag);
    }

    /// Absorbs another report.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// The diagnostics in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Consumes the report, yielding the diagnostics in emission order.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diagnostics
    }

    /// Number of diagnostics at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any error-severity diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Whether the report is completely empty.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether a specific rule fired at least once.
    pub fn fired(&self, rule: Rule) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }

    /// Process exit code for this report: `0` when clean (or only
    /// warnings/notes without `deny_warnings`), `1` when errors are present
    /// or warnings are denied. (`2` is reserved for usage errors.)
    pub fn exit_code(&self, deny_warnings: bool) -> u8 {
        if self.has_errors() || (deny_warnings && self.count(Severity::Warning) > 0) {
            1
        } else {
            0
        }
    }
}

impl FromIterator<Diagnostic> for Report {
    fn from_iter<I: IntoIterator<Item = Diagnostic>>(iter: I) -> Self {
        Report {
            diagnostics: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable_prefixed() {
        let mut seen = std::collections::HashSet::new();
        for &r in Rule::ALL {
            assert!(r.code().starts_with("SA"), "{}", r.code());
            assert_eq!(r.code().len(), 5, "{}", r.code());
            assert!(seen.insert(r.code()), "duplicate code {}", r.code());
            assert!(!r.summary().is_empty());
            assert!(!r.help().is_empty());
        }
    }

    #[test]
    fn codes_round_trip_through_from_code() {
        for &r in Rule::ALL {
            assert_eq!(Rule::from_code(r.code()), Some(r));
        }
        assert_eq!(Rule::from_code("SA999"), None);
        assert_eq!(Rule::from_code("sa001"), None);
        assert_eq!(Rule::from_code(""), None);
    }

    #[test]
    fn explain_carries_code_severity_summary_and_help() {
        let text = Rule::SampleBelowClt.explain();
        assert!(text.starts_with("SA140 (warning): "), "{text}");
        assert!(text.contains(Rule::SampleBelowClt.summary()), "{text}");
        assert!(text.contains(Rule::SampleBelowClt.help()), "{text}");
    }

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }

    #[test]
    fn report_accounting_and_exit_codes() {
        let mut r = Report::new();
        assert_eq!(r.exit_code(true), 0);
        r.push(Diagnostic::new(
            Rule::UnreachablePhase,
            Location::workload("w"),
            "phase 2 never scheduled",
        ));
        assert_eq!(r.count(Severity::Warning), 1);
        assert!(!r.has_errors());
        assert_eq!(r.exit_code(false), 0);
        assert_eq!(r.exit_code(true), 1);
        r.push(Diagnostic::new(
            Rule::ZeroSliceSize,
            Location::config("slice_size"),
            "slice_size = 0",
        ));
        assert!(r.has_errors());
        assert!(r.fired(Rule::ZeroSliceSize));
        assert!(!r.fired(Rule::BadMaxK));
        assert_eq!(r.exit_code(false), 1);
    }

    #[test]
    fn locations_render() {
        assert_eq!(Location::workload("a").to_string(), "workload `a`");
        assert_eq!(
            Location::workload_item("a", "phase 1").to_string(),
            "workload `a`, phase 1"
        );
        assert_eq!(
            Location::config("simpoint.max_k").to_string(),
            "config `simpoint.max_k`"
        );
        assert_eq!(Location::artifact("x.pb").to_string(), "artifact `x.pb`");
    }
}

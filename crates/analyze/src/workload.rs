//! Workload IR lints (`SA001`–`SA014`): structural validity of basic
//! blocks, phases and the schedule.
//!
//! [`lint_program`] checks a fully built [`Program`];
//! [`lint_program_parts`] runs the same rules over loose parts, which lets
//! callers (and tests) validate IR that `Program::new` itself rejects with
//! a typed [`IrError`]. [`diagnose_ir_error`] maps each constructor
//! rejection onto the lint rule that detects the same condition, so the
//! two validation paths speak one diagnostic language.

use crate::diag::{Diagnostic, Location, Report, Rule};
use sampsim_workload::{BasicBlock, InstKind, IrError, Phase, Program, Schedule};

/// Lints a built program.
pub fn lint_program(program: &Program) -> Report {
    lint_program_parts(
        program.name(),
        program.blocks(),
        program.phases(),
        program.schedule(),
    )
}

/// Lints loose program parts (the same rules as [`lint_program`]).
pub fn lint_program_parts(
    name: &str,
    blocks: &[BasicBlock],
    phases: &[Phase],
    schedule: &Schedule,
) -> Report {
    let mut report = Report::new();
    let loc = |item: String| Location::workload_item(name, item);

    // SA010/SA013: empty blocks, non-branch terminators.
    for (b, block) in blocks.iter().enumerate() {
        match block.insts.last() {
            None => report.push(Diagnostic::new(
                Rule::EmptyBlock,
                loc(format!("block {b}")),
                format!("block {b} contains no instructions"),
            )),
            Some(last) if !matches!(last.kind, InstKind::Branch { .. }) => {
                report.push(Diagnostic::new(
                    Rule::MissingTerminalBranch,
                    loc(format!("block {b}")),
                    format!(
                        "block {b} at {:#x} ends in {:?}, not a branch",
                        block.pc, last.kind
                    ),
                ));
            }
            Some(_) => {}
        }
    }

    let mut expected_stream_base = 0u32;
    for (p, phase) in phases.iter().enumerate() {
        // SA004: empty phases.
        if phase.blocks.is_empty() {
            report.push(Diagnostic::new(
                Rule::EmptyPhase,
                loc(format!("phase {p}")),
                format!("phase {p} owns no basic blocks"),
            ));
        }

        // SA001: dangling block references.
        for &b in &phase.blocks {
            if (b as usize) >= blocks.len() {
                report.push(Diagnostic::new(
                    Rule::DanglingBlockRef,
                    loc(format!("phase {p}")),
                    format!(
                        "phase {p} references block {b}, but the program has \
                         {} block(s)",
                        blocks.len()
                    ),
                ));
            }
        }

        // SA005: the block-selection probability row.
        if phase.block_weights.len() != phase.blocks.len() {
            report.push(Diagnostic::new(
                Rule::BadBlockWeights,
                loc(format!("phase {p}")),
                format!(
                    "phase {p} has {} block(s) but {} weight(s)",
                    phase.blocks.len(),
                    phase.block_weights.len()
                ),
            ));
        } else if !phase.blocks.is_empty() {
            let bad = phase
                .block_weights
                .iter()
                .any(|w| !w.is_finite() || *w <= 0.0);
            let total: f64 = phase.block_weights.iter().sum();
            if bad || !(total.is_finite() && total > 0.0) {
                report.push(Diagnostic::new(
                    Rule::BadBlockWeights,
                    loc(format!("phase {p}")),
                    format!(
                        "phase {p} selection weights {:?} do not normalize to \
                         a probability row summing to 1.0",
                        phase.block_weights
                    ),
                ));
            }
        }

        // SA006: selection noise.
        if !(0.0..=1.0).contains(&phase.selection_noise) || phase.selection_noise.is_nan() {
            report.push(Diagnostic::new(
                Rule::BadSelectionNoise,
                loc(format!("phase {p}")),
                format!(
                    "phase {p} selection_noise is {}, outside [0, 1]",
                    phase.selection_noise
                ),
            ));
        }

        // SA007: dangling stream references from memory instructions.
        for &b in &phase.blocks {
            let Some(block) = blocks.get(b as usize) else {
                continue; // already reported as SA001
            };
            for inst in &block.insts {
                if let Some(s) = inst.stream() {
                    if (s as usize) >= phase.streams.len() {
                        report.push(Diagnostic::new(
                            Rule::DanglingStreamRef,
                            loc(format!("phase {p}, block {b}")),
                            format!(
                                "instruction references stream {s}, but phase \
                                 {p} owns {} stream(s)",
                                phase.streams.len()
                            ),
                        ));
                    }
                }
            }
        }

        // SA011: densely packed stream bases.
        if phase.stream_base != expected_stream_base {
            report.push(Diagnostic::new(
                Rule::StreamBaseMismatch,
                loc(format!("phase {p}")),
                format!(
                    "phase {p} stream_base is {}, expected {} (running stream \
                     count)",
                    phase.stream_base, expected_stream_base
                ),
            ));
        }
        expected_stream_base = expected_stream_base.saturating_add(phase.streams.len() as u32);

        // SA012: zero-size regions.
        for (s, stream) in phase.streams.iter().enumerate() {
            if stream.region.size == 0 {
                report.push(Diagnostic::new(
                    Rule::ZeroSizeRegion,
                    loc(format!("phase {p}, stream {s}")),
                    format!(
                        "stream {s} of phase {p} covers a zero-size region at \
                         {:#x}",
                        stream.region.base
                    ),
                ));
            }
        }
    }

    // SA008: overlapping stream working sets (across all phases).
    let mut regions: Vec<(u64, u64, usize, usize)> = phases
        .iter()
        .enumerate()
        .flat_map(|(p, phase)| {
            phase
                .streams
                .iter()
                .enumerate()
                .filter(|(_, s)| s.region.size > 0)
                .map(move |(s, stream)| (stream.region.base, stream.region.size, p, s))
        })
        .collect();
    regions.sort_unstable();
    for w in regions.windows(2) {
        let (a_base, a_size, a_p, a_s) = w[0];
        let (b_base, _, b_p, b_s) = w[1];
        if a_base.saturating_add(a_size) > b_base {
            report.push(Diagnostic::new(
                Rule::OverlappingStreamRegions,
                loc(format!("phase {a_p}, stream {a_s}")),
                format!(
                    "region [{a_base:#x}, +{a_size:#x}) of phase {a_p} stream \
                     {a_s} overlaps region at {b_base:#x} of phase {b_p} \
                     stream {b_s}"
                ),
            ));
        }
    }

    // SA014: zero-length segments. `Schedule::new` rejects these, so this
    // only fires on schedules decoded from hostile or corrupt input.
    for (i, seg) in schedule.segments().iter().enumerate() {
        if seg.insts == 0 {
            report.push(Diagnostic::new(
                Rule::ZeroLengthSegment,
                loc(format!("schedule segment {i}")),
                format!("segment {i} retires zero instructions"),
            ));
        }
    }

    // SA002: dangling phase references from the schedule.
    for (i, seg) in schedule.segments().iter().enumerate() {
        if (seg.phase as usize) >= phases.len() {
            report.push(Diagnostic::new(
                Rule::DanglingPhaseRef,
                loc(format!("schedule segment {i}")),
                format!(
                    "segment {i} references phase {}, but the program has {} \
                     phase(s)",
                    seg.phase,
                    phases.len()
                ),
            ));
        }
    }

    // SA003: unreachable phases.
    let mut scheduled = vec![false; phases.len()];
    for seg in schedule.segments() {
        if let Some(flag) = scheduled.get_mut(seg.phase as usize) {
            *flag = true;
        }
    }
    for (p, seen) in scheduled.iter().enumerate() {
        if !seen {
            report.push(Diagnostic::new(
                Rule::UnreachablePhase,
                loc(format!("phase {p}")),
                format!("phase {p} never appears in the schedule"),
            ));
        }
    }

    // SA009: empty schedule.
    if schedule.is_empty() || schedule.total_insts() == 0 {
        report.push(Diagnostic::new(
            Rule::EmptySchedule,
            loc("schedule".into()),
            "the schedule contains no instructions".to_string(),
        ));
    }

    report
}

/// Maps a typed IR construction error onto the lint rule that detects the
/// same condition, producing a [`Diagnostic`] in the shared format.
///
/// This is the bridge between the two validation paths: constructors
/// reject malformed IR with an [`IrError`], lints re-detect the same
/// defects on loose parts; both now surface identically.
pub fn diagnose_ir_error(name: &str, err: &IrError) -> Diagnostic {
    let rule = match err {
        IrError::EmptyBlock { .. } => Rule::EmptyBlock,
        IrError::MissingTerminalBranch { .. } => Rule::MissingTerminalBranch,
        IrError::EmptyPhase => Rule::EmptyPhase,
        IrError::BadBlockWeights { .. } => Rule::BadBlockWeights,
        IrError::BadSelectionNoise { .. } => Rule::BadSelectionNoise,
        IrError::ZeroSizeRegion { .. } => Rule::ZeroSizeRegion,
        IrError::ZeroLengthSegment { .. } => Rule::ZeroLengthSegment,
        IrError::DanglingPhaseRef { .. } => Rule::DanglingPhaseRef,
        IrError::DanglingBlockRef { .. } => Rule::DanglingBlockRef,
        IrError::StreamBaseMismatch { .. } => Rule::StreamBaseMismatch,
        IrError::DanglingStreamRef { .. } => Rule::DanglingStreamRef,
    };
    let item = match err {
        IrError::EmptyBlock { pc } | IrError::MissingTerminalBranch { pc } => {
            format!("block at {pc:#x}")
        }
        IrError::ZeroSizeRegion { base } => format!("region at {base:#x}"),
        IrError::ZeroLengthSegment { segment } | IrError::DanglingPhaseRef { segment, .. } => {
            format!("schedule segment {segment}")
        }
        IrError::DanglingBlockRef { phase, .. }
        | IrError::StreamBaseMismatch { phase, .. }
        | IrError::DanglingStreamRef { phase, .. } => format!("phase {phase}"),
        IrError::EmptyPhase
        | IrError::BadBlockWeights { .. }
        | IrError::BadSelectionNoise { .. } => String::new(),
    };
    let location = if item.is_empty() {
        Location::workload(name)
    } else {
        Location::workload_item(name, item)
    };
    Diagnostic::new(rule, location, err.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_workload::spec::{PhaseSpec, WorkloadSpec};

    #[test]
    fn built_workload_is_clean() {
        let program = WorkloadSpec::builder("clean", 5)
            .total_insts(100_000)
            .phase(PhaseSpec::balanced(1.0))
            .phase(PhaseSpec::memory_bound(1.0))
            .build()
            .build();
        let report = lint_program(&program);
        assert!(report.is_empty(), "{:?}", report.diagnostics());
    }

    #[test]
    fn ir_errors_map_to_matching_rules() {
        let cases = [
            (IrError::EmptyBlock { pc: 0x40 }, Rule::EmptyBlock),
            (
                IrError::MissingTerminalBranch { pc: 0x40 },
                Rule::MissingTerminalBranch,
            ),
            (IrError::EmptyPhase, Rule::EmptyPhase),
            (
                IrError::BadBlockWeights {
                    blocks: 2,
                    weights: 1,
                },
                Rule::BadBlockWeights,
            ),
            (
                IrError::BadSelectionNoise { noise: 2.0 },
                Rule::BadSelectionNoise,
            ),
            (IrError::ZeroSizeRegion { base: 8 }, Rule::ZeroSizeRegion),
            (
                IrError::ZeroLengthSegment { segment: 3 },
                Rule::ZeroLengthSegment,
            ),
            (
                IrError::DanglingPhaseRef {
                    segment: 0,
                    phase: 9,
                    num_phases: 1,
                },
                Rule::DanglingPhaseRef,
            ),
            (
                IrError::DanglingBlockRef {
                    phase: 0,
                    block: 9,
                    num_blocks: 1,
                },
                Rule::DanglingBlockRef,
            ),
            (
                IrError::StreamBaseMismatch {
                    phase: 1,
                    actual: 0,
                    expected: 2,
                },
                Rule::StreamBaseMismatch,
            ),
            (
                IrError::DanglingStreamRef {
                    phase: 0,
                    block: 0,
                    stream: 4,
                    num_streams: 1,
                },
                Rule::DanglingStreamRef,
            ),
        ];
        for (err, rule) in cases {
            let d = diagnose_ir_error("w", &err);
            assert_eq!(d.rule, rule, "{err}");
            assert_eq!(d.message, err.to_string());
        }
    }
}

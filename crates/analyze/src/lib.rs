//! # sampsim-analyze
//!
//! Static analysis for the sampling pipeline: lints over workload IR,
//! sampling configurations and cache hierarchies, plus post-hoc audits of
//! SimPoint results and regional pinballs.
//!
//! Every finding is a [`Diagnostic`] carrying a stable rule code
//! (`SA0xx`), a [`Severity`], a [`Location`] and fixed help text; passes
//! collect them into a [`Report`] which renders as human-readable text
//! ([`render_human`]) or JSON lines ([`render_json_lines`]).
//!
//! Rule families:
//!
//! * `SA001`–`SA012` — workload IR ([`lint_program`])
//! * `SA020`–`SA028` — sampling configuration ([`lint_sampling_config`])
//! * `SA030`–`SA034` — cache-hierarchy geometry ([`lint_hierarchy`])
//! * `SA040`–`SA049` — artifact audits ([`audit_simpoints`],
//!   [`audit_regions`], [`audit_bbvs`])

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod config;
pub mod diag;
pub mod render;
pub mod workload;

pub use artifact::{audit_bbvs, audit_regions, audit_simpoints, WEIGHT_SUM_TOLERANCE};
pub use config::{lint_hierarchy, lint_sampling_config, lint_simpoint_options, SamplingConfig};
pub use diag::{Diagnostic, Location, Report, Rule, Severity};
pub use render::{diagnostic_json, render_human, render_json_lines};
pub use workload::{lint_program, lint_program_parts};

//! # sampsim-analyze
//!
//! Static analysis for the sampling pipeline: lints over workload IR,
//! sampling configurations and cache hierarchies, plus post-hoc audits of
//! SimPoint results and regional pinballs.
//!
//! Every finding is a [`Diagnostic`] carrying a stable rule code
//! (`SA0xx`), a [`Severity`], a [`Location`] and fixed help text; passes
//! collect them into a [`Report`] which renders as human-readable text
//! ([`render_human`]) or JSON lines ([`render_json_lines`]).
//!
//! Rule families:
//!
//! * `SA001`–`SA014` — workload IR ([`lint_program`])
//! * `SA020`–`SA028` — sampling configuration ([`lint_sampling_config`])
//! * `SA030`–`SA034` — cache-hierarchy geometry ([`lint_hierarchy`])
//! * `SA040`–`SA049` — artifact audits ([`audit_simpoints`],
//!   [`audit_regions`], [`audit_bbvs`])
//! * `SA100`–`SA104` — memory abstract interpretation ([`lint_memory`])
//! * `SA110` — phase-graph structure ([`lint_phase_graph`])
//! * `SA120`–`SA125` — static-vs-dynamic audit oracle
//!   ([`audit_bbvs_static`], [`audit_cursors`], [`AuditSummary`])
//! * `SA130` — sampling-strategy validation ([`lint_strategy_name`])
//! * `SA140`–`SA145` — statistical soundness ([`lint_soundness`])
//!
//! The deeper passes are built on a small reusable framework: a worklist
//! fixpoint solver over join-semilattices ([`fixpoint`]), a
//! phase-transition graph with reachability/dominance/SCC passes
//! ([`cfg`]), and abstract domains for address streams ([`absint`]). See
//! `docs/static-analysis.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod artifact;
pub mod cfg;
pub mod config;
pub mod diag;
pub mod fixpoint;
pub mod render;
pub mod soundness;
pub mod staticbbv;
pub mod workload;

pub use absint::{lint_memory, Interval, MemorySummary, StrideClass};
pub use artifact::{audit_bbvs, audit_regions, audit_simpoints, WEIGHT_SUM_TOLERANCE};
pub use cfg::{lint_phase_graph, PhaseGraph};
pub use config::{
    lint_hierarchy, lint_sampling_config, lint_simpoint_options, lint_strategy_name, SamplingConfig,
};
pub use diag::{Diagnostic, Location, Report, Rule, Severity};
pub use fixpoint::{solve, BitSet, JoinSemiLattice};
pub use render::{diagnostic_json, render_human, render_json_lines};
pub use soundness::{
    lint_soundness, materialized_bytes_estimate, predicted_instructions, SoundnessInput,
    CLT_MIN_SAMPLES, DEFAULT_MATERIALIZED_BUDGET_BYTES, WEIGHT_CONCENTRATION_BOUND,
};
pub use staticbbv::{
    audit_bbvs_static, audit_cursors, diagnose_unreadable_artifact, AuditSummary, StaticBbvBounds,
};
pub use workload::{diagnose_ir_error, lint_program, lint_program_parts};

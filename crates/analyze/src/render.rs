//! Human-readable and JSON-lines renderers for [`Report`]s.
//!
//! The JSON renderer emits one object per line (JSON-lines), hand-rolled so
//! the crate stays dependency-free. The shape is stable and golden-tested:
//!
//! ```json
//! {"code":"SA001","severity":"error","location":{"kind":"workload",
//!  "workload":"505.mcf_r","item":"phase 3"},"message":"...","help":"..."}
//! ```

use crate::diag::{Diagnostic, Location, Report, Severity};
use std::fmt::Write;

/// Renders a report in `rustc`-style human-readable form.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for d in report.diagnostics() {
        let _ = writeln!(out, "{}[{}]: {}", d.severity, d.rule, d.message);
        let _ = writeln!(out, "  --> {}", d.location);
        let _ = writeln!(out, "  help: {}", d.help);
    }
    if !report.is_empty() {
        let _ = writeln!(
            out,
            "{} error(s), {} warning(s), {} note(s)",
            report.count(Severity::Error),
            report.count(Severity::Warning),
            report.count(Severity::Note),
        );
    }
    out
}

/// Renders a report as JSON lines, one diagnostic per line.
pub fn render_json_lines(report: &Report) -> String {
    let mut out = String::new();
    for d in report.diagnostics() {
        out.push_str(&diagnostic_json(d));
        out.push('\n');
    }
    out
}

/// Renders one diagnostic as a single-line JSON object.
pub fn diagnostic_json(d: &Diagnostic) -> String {
    let mut s = String::with_capacity(128);
    s.push_str("{\"code\":");
    json_string(&mut s, d.rule.code());
    s.push_str(",\"severity\":");
    json_string(&mut s, d.severity.label());
    s.push_str(",\"location\":");
    location_json(&mut s, &d.location);
    s.push_str(",\"message\":");
    json_string(&mut s, &d.message);
    s.push_str(",\"help\":");
    json_string(&mut s, d.help);
    s.push('}');
    s
}

fn location_json(s: &mut String, loc: &Location) {
    match loc {
        Location::Workload { workload, item } => {
            s.push_str("{\"kind\":\"workload\",\"workload\":");
            json_string(s, workload);
            s.push_str(",\"item\":");
            json_string(s, item);
            s.push('}');
        }
        Location::Config { field } => {
            s.push_str("{\"kind\":\"config\",\"field\":");
            json_string(s, field);
            s.push('}');
        }
        Location::Artifact { path } => {
            s.push_str("{\"kind\":\"artifact\",\"path\":");
            json_string(s, path);
            s.push('}');
        }
    }
}

/// Appends `value` as a JSON string literal (RFC 8259 escaping).
fn json_string(s: &mut String, value: &str) {
    s.push('"');
    for c in value.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Location, Rule};

    fn sample() -> Report {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            Rule::DanglingBlockRef,
            Location::workload_item("demo", "phase 0"),
            "block 9 of 1",
        ));
        r.push(Diagnostic::new(
            Rule::UnreachablePhase,
            Location::workload_item("demo", "phase 2"),
            "never scheduled",
        ));
        r
    }

    #[test]
    fn human_rendering_mentions_code_location_help() {
        let text = render_human(&sample());
        assert!(text.contains("error[SA001]: block 9 of 1"));
        assert!(text.contains("--> workload `demo`, phase 0"));
        assert!(text.contains("warning[SA003]"));
        assert!(text.contains("help: "));
        assert!(text.contains("1 error(s), 1 warning(s), 0 note(s)"));
    }

    #[test]
    fn empty_report_renders_empty() {
        assert_eq!(render_human(&Report::new()), "");
        assert_eq!(render_json_lines(&Report::new()), "");
    }

    #[test]
    fn json_escaping() {
        let mut s = String::new();
        json_string(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn json_lines_one_object_per_diagnostic() {
        let text = render_json_lines(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"code\":\"SA001\""));
        assert!(lines[0].ends_with("}"));
        assert!(lines[1].contains("\"severity\":\"warning\""));
    }
}

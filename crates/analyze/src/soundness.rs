//! Statistical-soundness lints (`SA140`–`SA145`): does the configured
//! strategy's selection, derived from parameters and the slice count
//! alone, plausibly support the estimates the pipeline will report?
//!
//! The pass runs [`StrategySpec::predict`] — the same static model behind
//! `sampsim plan` — and checks the predicted shape against normal-theory
//! sample-size requirements, weight-concentration bounds and the
//! simulated-instruction budget. Everything here is closed-form: no
//! profiling, clustering or replay happens, so the checks are cheap
//! enough to run at every front door (CLI lint, `Pipeline::run`
//! preflight, serve request validation).
//!
//! A selection that covers every slice (a *census*) reproduces the
//! whole-program numbers exactly, so the sample-size and
//! weight-concentration rules (`SA140`, `SA143`) are suppressed when the
//! predicted region count reaches the slice count — there is no sampling
//! error to bound. `SA141` is the exception: a census *by clustering
//! degeneration* is precisely what it reports.

use crate::diag::{Diagnostic, Location, Report, Rule};
use sampsim_simpoint::{SimPointOptions, StrategySpec};

/// Minimum effective sample count for normal-theory confidence intervals
/// (the classical CLT rule of thumb behind `SA140`).
pub const CLT_MIN_SAMPLES: usize = 30;

/// A single region's statically-bounded weight share at or above this
/// fraction fires `SA143`: one unrepresentative pick could carry half the
/// estimate.
pub const WEIGHT_CONCENTRATION_BOUND: f64 = 0.5;

/// Default memory budget for the materialized profile (`SA150`): 256 MiB,
/// generous for every shipped benchmark at its default scale but crossed
/// around a million slices — exactly where the streaming clustering path
/// is the right tool.
pub const DEFAULT_MATERIALIZED_BUDGET_BYTES: u64 = 256 << 20;

/// Statically predicted bytes the profile→select stages materialize when
/// run through the non-streaming path: one projected row (`8 * dim`
/// bytes) plus BBV bookkeeping (conservatively 128 bytes of counts and
/// headers) per slice. Shared by the `SA150` lint and the perf harness so
/// the two can never disagree about what "materialized" means.
pub fn materialized_bytes_estimate(num_slices: u64, dim: usize) -> u64 {
    num_slices.saturating_mul(8 * dim as u64 + 128)
}

/// The dependency-neutral view the soundness pass runs over: the strategy
/// choice plus the run shape the workload IR determines statically.
#[derive(Debug, Clone, Copy)]
pub struct SoundnessInput<'a> {
    /// The configured sampling strategy.
    pub strategy: &'a StrategySpec,
    /// SimPoint analysis options (supplies MaxK for the default strategy).
    pub simpoint: &'a SimPointOptions,
    /// Slice length in instructions.
    pub slice_size: u64,
    /// Warmup window in slices.
    pub warmup_slices: u64,
    /// Slice count the run produces (`total_insts.div_ceil(slice_size)`).
    pub num_slices: u64,
    /// Whole-program instruction count.
    pub total_insts: u64,
    /// Memory budget for the materialized profile (`SA150`); use
    /// [`DEFAULT_MATERIALIZED_BUDGET_BYTES`] unless the caller knows its
    /// deployment better.
    pub materialized_budget_bytes: u64,
}

/// The statically predicted replay cost of a plan, in instructions:
/// every selected region replays its own slice plus at most
/// `warmup_slices` predecessor slices (clamped to the run prefix).
/// Shared with the `sampsim plan` cost model so the lint and the report
/// can never disagree.
pub fn predicted_instructions(
    regions: usize,
    slice_size: u64,
    warmup_slices: u64,
    num_slices: u64,
) -> u64 {
    let warmup = warmup_slices.min(num_slices.saturating_sub(1));
    (regions as u64)
        .saturating_mul(slice_size)
        .saturating_mul(1 + warmup)
}

/// Runs the statistical-soundness pass (`SA140`–`SA145`).
pub fn lint_soundness(input: &SoundnessInput<'_>) -> Report {
    let mut report = Report::new();
    let n = input.num_slices;
    if n == 0 || input.slice_size == 0 {
        // Nothing to sample (SA009) or nothing to slice (SA020); those
        // rules own the finding.
        return report;
    }
    let plan = input.strategy.predict(input.simpoint, n);
    let census = plan.regions as u64 >= n || n <= 1;
    let strategy = input.strategy.name();

    // SA140: effective sample count below CLT plausibility.
    if !census && plan.samples < CLT_MIN_SAMPLES {
        report.push(Diagnostic::new(
            Rule::SampleBelowClt,
            Location::config("strategy"),
            format!(
                "{strategy} contributes {} sample(s) per estimate over {n} \
                 slices; normal-theory intervals need >= {CLT_MIN_SAMPLES}",
                plan.samples
            ),
        ));
    }

    // SA141: the clustering strategy cannot compress at all.
    if matches!(input.strategy, StrategySpec::SimPoint) && n > 1 && input.simpoint.max_k as u64 >= n
    {
        report.push(Diagnostic::new(
            Rule::ClusteringDegenerate,
            Location::config("simpoint.max_k"),
            format!(
                "MaxK = {} with only {n} slices: every slice can form its \
                 own cluster and the selection degenerates to a census",
                input.simpoint.max_k
            ),
        ));
    }

    // SA142: a stratum too small for pilot spread estimation.
    if let StrategySpec::Stratified2p(o) = input.strategy {
        if n >= 2 {
            let s = o.strata.clamp(1, n as usize);
            let smallest = n as usize / s;
            if o.pilot < 2 || smallest < 2 {
                report.push(Diagnostic::new(
                    Rule::StratumStarved,
                    Location::config("strategy.stratified2p"),
                    format!(
                        "{s} strata over {n} slices with pilot = {}: the \
                         smallest stratum holds {smallest} slice(s), so \
                         per-stratum spread cannot be estimated and Neyman \
                         allocation degenerates to its proportional fallback",
                        o.pilot
                    ),
                ));
            }
        }
    }

    // SA143: one region's weight can dominate the estimate.
    if !census
        && plan.max_weight_bound.is_finite()
        && plan.max_weight_bound >= WEIGHT_CONCENTRATION_BOUND
    {
        report.push(Diagnostic::new(
            Rule::WeightConcentration,
            Location::config("strategy"),
            format!(
                "{strategy} allows a single region to carry up to {:.0}% of \
                 every estimate (bound {WEIGHT_CONCENTRATION_BOUND})",
                plan.max_weight_bound * 100.0
            ),
        ));
    }

    // SA144: a replicated strategy that cannot produce error bars.
    if let StrategySpec::Rss(o) = input.strategy {
        if o.replicates < 2 {
            report.push(Diagnostic::new(
                Rule::InsufficientReplicates,
                Location::config("strategy.rss.replicates"),
                format!(
                    "replicates = {}; the spread across replicates is the \
                     only source of rss error bars, so every reported CI \
                     half-width would be exactly 0",
                    o.replicates
                ),
            ));
        }
    }

    // SA150: the non-streaming profile path would materialize more than
    // the memory budget. Independent of the strategy: the footprint is a
    // function of the slice count and the projection dimension alone.
    let footprint = materialized_bytes_estimate(n, input.simpoint.dim);
    if input.materialized_budget_bytes > 0 && footprint > input.materialized_budget_bytes {
        report.push(Diagnostic::new(
            Rule::MaterializedFootprint,
            Location::config("slice_size"),
            format!(
                "{n} slices materialize ~{} MiB of BBVs and projected rows \
                 (budget {} MiB); the streaming path's footprint is \
                 bounded by the batch size instead",
                footprint >> 20,
                input.materialized_budget_bytes >> 20
            ),
        ));
    }

    // SA145: replaying the selection costs more than simulating the truth.
    let cost = predicted_instructions(plan.regions, input.slice_size, input.warmup_slices, n);
    if cost > input.total_insts {
        report.push(Diagnostic::new(
            Rule::CostExceedsWhole,
            Location::config("warmup_slices"),
            format!(
                "{} region(s) x {} inst slices with a {}-slice warmup \
                 window replay {cost} instructions, more than the \
                 {}-instruction whole run",
                plan.regions, input.slice_size, input.warmup_slices, input.total_insts
            ),
        ));
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sampsim_simpoint::{RssOptions, Stratified2pOptions};

    /// A run shape generous enough that default strategies are clean:
    /// 2000 slices of 10k instructions, 48-slice warmup.
    fn base<'a>(strategy: &'a StrategySpec, simpoint: &'a SimPointOptions) -> SoundnessInput<'a> {
        SoundnessInput {
            strategy,
            simpoint,
            slice_size: 10_000,
            warmup_slices: 48,
            num_slices: 2_000,
            total_insts: 20_000_000,
            materialized_budget_bytes: DEFAULT_MATERIALIZED_BUDGET_BYTES,
        }
    }

    fn fired(input: &SoundnessInput<'_>) -> Vec<Rule> {
        lint_soundness(input)
            .into_diagnostics()
            .iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn default_strategies_are_clean_on_a_generous_run() {
        let opts = SimPointOptions::default();
        for spec in StrategySpec::registry() {
            let input = base(&spec, &opts);
            assert_eq!(fired(&input), vec![], "{}", spec.name());
        }
    }

    #[test]
    fn sa140_fires_below_clt_and_clears_at_30() {
        let opts = SimPointOptions {
            max_k: 10,
            ..SimPointOptions::default()
        };
        let spec = StrategySpec::SimPoint;
        let input = base(&spec, &opts);
        assert_eq!(fired(&input), vec![Rule::SampleBelowClt]);
        let opts = SimPointOptions {
            max_k: 30,
            ..SimPointOptions::default()
        };
        let input = base(&spec, &opts);
        assert_eq!(fired(&input), vec![]);
        // rss reaches the CLT count through set_size x replicates.
        let starved = StrategySpec::Rss(RssOptions {
            set_size: 4,
            replicates: 5,
            ..RssOptions::default()
        });
        let defaults = SimPointOptions::default();
        let input = base(&starved, &defaults);
        assert_eq!(fired(&input), vec![Rule::SampleBelowClt]);
    }

    #[test]
    fn sa140_suppressed_when_the_selection_is_a_census() {
        let opts = SimPointOptions {
            max_k: 10,
            ..SimPointOptions::default()
        };
        let spec = StrategySpec::SimPoint;
        let mut input = base(&spec, &opts);
        input.num_slices = 8; // regions = 8 = n: exact reproduction
        input.total_insts = 80_000;
        input.warmup_slices = 0;
        let rules = fired(&input);
        assert!(!rules.contains(&Rule::SampleBelowClt), "{rules:?}");
        assert!(rules.contains(&Rule::ClusteringDegenerate), "{rules:?}");
    }

    #[test]
    fn sa141_needs_the_clustering_strategy_and_a_multi_slice_run() {
        let opts = SimPointOptions {
            max_k: 100,
            ..SimPointOptions::default()
        };
        let spec = StrategySpec::SimPoint;
        let mut input = base(&spec, &opts);
        input.num_slices = 50;
        input.total_insts = 500_000;
        input.warmup_slices = 0;
        assert!(fired(&input).contains(&Rule::ClusteringDegenerate));
        // A single-slice run has nothing to cluster; census is exact.
        input.num_slices = 1;
        input.total_insts = 10_000;
        assert_eq!(fired(&input), vec![]);
        // Other strategies ignore MaxK entirely.
        let other = StrategySpec::parse("stratified2p").unwrap();
        let mut input = base(&other, &opts);
        input.num_slices = 50;
        input.total_insts = 500_000;
        input.warmup_slices = 0;
        assert!(!fired(&input).contains(&Rule::ClusteringDegenerate));
    }

    #[test]
    fn sa142_fires_on_starved_strata_and_pilots() {
        let opts = SimPointOptions::default();
        // 64 strata over 100 slices: smallest stratum has 1 slice.
        let starved = StrategySpec::Stratified2p(Stratified2pOptions {
            strata: 64,
            ..Stratified2pOptions::default()
        });
        let mut input = base(&starved, &opts);
        input.num_slices = 100;
        input.total_insts = 1_000_000;
        input.warmup_slices = 0;
        assert!(fired(&input).contains(&Rule::StratumStarved));
        // A 1-draw pilot cannot estimate spread even in fat strata.
        let pilotless = StrategySpec::Stratified2p(Stratified2pOptions {
            pilot: 1,
            ..Stratified2pOptions::default()
        });
        let input = base(&pilotless, &opts);
        assert!(fired(&input).contains(&Rule::StratumStarved));
        // Defaults on the same run are clean.
        let ok = StrategySpec::parse("stratified2p").unwrap();
        let input = base(&ok, &opts);
        assert_eq!(fired(&input), vec![]);
    }

    #[test]
    fn sa143_fires_when_one_region_can_dominate() {
        let opts = SimPointOptions::default();
        // set_size 2: each region carries weight 1/2.
        let concentrated = StrategySpec::Rss(RssOptions {
            set_size: 2,
            replicates: 20,
            ..RssOptions::default()
        });
        let input = base(&concentrated, &opts);
        assert_eq!(fired(&input), vec![Rule::WeightConcentration]);
        // MaxK = 1: the single point provably carries weight 1.0.
        let k1 = SimPointOptions {
            max_k: 1,
            ..SimPointOptions::default()
        };
        let spec = StrategySpec::SimPoint;
        let input = base(&spec, &k1);
        assert!(fired(&input).contains(&Rule::WeightConcentration));
        // set_size 3 bounds each weight by 1/3 < 0.5: clean of SA143.
        let ok = StrategySpec::Rss(RssOptions {
            set_size: 3,
            replicates: 20,
            ..RssOptions::default()
        });
        let input = base(&ok, &opts);
        assert!(!fired(&input).contains(&Rule::WeightConcentration));
    }

    #[test]
    fn sa144_fires_below_two_replicates() {
        let opts = SimPointOptions::default();
        let single = StrategySpec::Rss(RssOptions {
            set_size: 30,
            replicates: 1,
            ..RssOptions::default()
        });
        let input = base(&single, &opts);
        assert_eq!(fired(&input), vec![Rule::InsufficientReplicates]);
        let ok = StrategySpec::Rss(RssOptions {
            set_size: 30,
            replicates: 2,
            ..RssOptions::default()
        });
        let input = base(&ok, &opts);
        assert_eq!(fired(&input), vec![]);
    }

    #[test]
    fn sa145_fires_when_replay_exceeds_the_whole_run() {
        let opts = SimPointOptions {
            max_k: 10,
            ..SimPointOptions::default()
        };
        let spec = StrategySpec::SimPoint;
        let mut input = base(&spec, &opts);
        // 10 regions x 10k insts x (1 + 48) = 4.9M > 400k whole run.
        input.num_slices = 40;
        input.total_insts = 400_000;
        let rules = fired(&input);
        assert!(rules.contains(&Rule::CostExceedsWhole), "{rules:?}");
        // Dropping the warmup window brings the cost under the run.
        input.warmup_slices = 0;
        assert!(!fired(&input).contains(&Rule::CostExceedsWhole));
        // Exact equality (a census of a 1-slice run) is not "exceeds".
        input.num_slices = 1;
        input.total_insts = 10_000;
        input.warmup_slices = 3;
        assert_eq!(fired(&input), vec![]);
    }

    #[test]
    fn sa150_fires_past_the_materialized_budget() {
        let opts = SimPointOptions::default();
        let spec = StrategySpec::SimPoint;
        // 2M slices x (8*15 + 128) bytes ≈ 473 MiB > 256 MiB default.
        let mut input = base(&spec, &opts);
        input.num_slices = 2_000_000;
        input.total_insts = 20_000_000_000;
        let rules = fired(&input);
        assert!(rules.contains(&Rule::MaterializedFootprint), "{rules:?}");
        // The same run under a raised budget is clean of SA150.
        input.materialized_budget_bytes = 1 << 30;
        let rules = fired(&input);
        assert!(!rules.contains(&Rule::MaterializedFootprint), "{rules:?}");
        // A zero budget disables the check entirely.
        input.materialized_budget_bytes = 0;
        let rules = fired(&input);
        assert!(!rules.contains(&Rule::MaterializedFootprint), "{rules:?}");
        // The estimate itself is the shared closed form.
        assert_eq!(materialized_bytes_estimate(1_000, 15), 1_000 * 248);
        // The default budget admits a full 1M-slice run and fires just
        // past ~1.08M slices at dim 15.
        assert!(materialized_bytes_estimate(1_100_000, 15) > DEFAULT_MATERIALIZED_BUDGET_BYTES);
        assert!(materialized_bytes_estimate(1_000_000, 15) < DEFAULT_MATERIALIZED_BUDGET_BYTES);
    }

    #[test]
    fn zero_shapes_defer_to_their_owning_rules() {
        let opts = SimPointOptions::default();
        let spec = StrategySpec::SimPoint;
        let mut input = base(&spec, &opts);
        input.num_slices = 0;
        assert_eq!(fired(&input), vec![]);
        let mut input = base(&spec, &opts);
        input.slice_size = 0;
        assert_eq!(fired(&input), vec![]);
    }
}

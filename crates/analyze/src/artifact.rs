//! Artifact audits (`SA040`–`SA049`): post-hoc validity of SimPoint
//! results, regional pinballs and BBV matrices.
//!
//! These are the checks the PinPoints-release methodology applies before
//! publishing simulation points: weights must cover the run exactly once,
//! every point must land inside the profiled window, and checkpoints must
//! belong to the program they claim to represent.

use crate::diag::{Diagnostic, Location, Report, Rule};
use sampsim_pinball::RegionalPinball;
use sampsim_simpoint::bbv::Bbv;
use sampsim_simpoint::{SimPoint, SimPointsResult};
use sampsim_workload::Program;

/// Tolerance on the unit-weight invariant. Weights are ratios of small
/// integers, so drift beyond this indicates real corruption rather than
/// floating-point rounding.
pub const WEIGHT_SUM_TOLERANCE: f64 = 1e-6;

/// Audits a SimPoint analysis result. `label` names the artifact in
/// diagnostics (e.g. a benchmark or file name).
pub fn audit_simpoints(result: &SimPointsResult, label: &str) -> Report {
    let mut report = Report::new();
    let loc = |detail: String| Location::artifact(format!("{label}: {detail}"));
    let num_slices = result.assignments.len() as u64;

    audit_weights(
        result.points.iter().map(|p| p.weight),
        &mut report,
        label,
        "point",
    );

    // SA042: point slices inside the profiled window.
    for p in &result.points {
        if num_slices > 0 && p.slice >= num_slices {
            report.push(Diagnostic::new(
                Rule::PointOutOfRange,
                loc(format!("point at slice {}", p.slice)),
                format!(
                    "point references slice {} of a {num_slices}-slice run",
                    p.slice
                ),
            ));
        }
        // SA043: point cluster ids inside k.
        if (p.cluster as usize) >= result.k {
            report.push(Diagnostic::new(
                Rule::BadAssignment,
                loc(format!("point at slice {}", p.slice)),
                format!("point cluster {} is outside k = {}", p.cluster, result.k),
            ));
        }
    }

    // SA043: per-slice assignments inside k.
    for (i, &a) in result.assignments.iter().enumerate() {
        if (a as usize) >= result.k {
            report.push(Diagnostic::new(
                Rule::BadAssignment,
                loc(format!("slice {i}")),
                format!(
                    "slice {i} is assigned cluster {a}, outside k = {}",
                    result.k
                ),
            ));
        }
    }

    // SA044: empty clusters.
    if !result.assignments.is_empty() {
        let mut sizes = vec![0u64; result.k];
        for &a in &result.assignments {
            if let Some(s) = sizes.get_mut(a as usize) {
                *s += 1;
            }
        }
        for (c, &size) in sizes.iter().enumerate() {
            if size == 0 {
                report.push(Diagnostic::new(
                    Rule::EmptyCluster,
                    loc(format!("cluster {c}")),
                    format!("cluster {c} of k = {} holds no slices", result.k),
                ));
            }
        }
    }

    report.merge(audit_point_uniqueness(&result.points, label));
    report
}

/// Audits regional pinballs against the program they were captured from.
pub fn audit_regions(regions: &[RegionalPinball], program: &Program, label: &str) -> Report {
    let mut report = Report::new();
    let loc = |detail: String| Location::artifact(format!("{label}: {detail}"));

    audit_weights(
        regions.iter().map(|pb| pb.weight),
        &mut report,
        label,
        "region",
    );

    for pb in regions {
        let region = format!("region at slice {}", pb.slice_index);
        // SA047: provenance.
        if pb.program_digest != program.digest() {
            report.push(Diagnostic::new(
                Rule::DigestMismatch,
                loc(region.clone()),
                format!(
                    "pinball digest {:#018x} does not match program \
                     `{}` ({:#018x})",
                    pb.program_digest,
                    program.name(),
                    program.digest()
                ),
            ));
        }
        // SA048: slice alignment and range.
        let expected_start = pb.slice_index.saturating_mul(pb.length);
        if pb.length == 0 || pb.start.retired != expected_start {
            report.push(Diagnostic::new(
                Rule::MisalignedRegion,
                loc(region.clone()),
                format!(
                    "region starts at instruction {} but slice {} x length {} \
                     = {expected_start}",
                    pb.start.retired, pb.slice_index, pb.length
                ),
            ));
        } else if pb.start.retired >= program.total_insts() {
            report.push(Diagnostic::new(
                Rule::MisalignedRegion,
                loc(region),
                format!(
                    "region starts at instruction {} beyond the program end \
                     ({})",
                    pb.start.retired,
                    program.total_insts()
                ),
            ));
        }
    }

    // SA049: duplicate slices.
    let mut slices: Vec<u64> = regions.iter().map(|pb| pb.slice_index).collect();
    slices.sort_unstable();
    for w in slices.windows(2) {
        if w[0] == w[1] {
            report.push(Diagnostic::new(
                Rule::DuplicatePoints,
                loc(format!("region at slice {}", w[0])),
                format!("two regions checkpoint the same slice {}", w[0]),
            ));
        }
    }
    report
}

/// Audits per-slice BBVs against the profiled program's block count.
pub fn audit_bbvs(bbvs: &[Bbv], num_blocks: usize, label: &str) -> Report {
    let mut report = Report::new();
    let loc = |detail: String| Location::artifact(format!("{label}: {detail}"));
    for (i, bbv) in bbvs.iter().enumerate() {
        // SA046: empty slices.
        if bbv.is_empty() {
            report.push(Diagnostic::new(
                Rule::EmptyBbv,
                loc(format!("slice {i}")),
                format!("slice {i} retired no instructions"),
            ));
            continue;
        }
        // SA045: dimension consistency.
        for &(block, _) in bbv.entries() {
            if (block as usize) >= num_blocks {
                report.push(Diagnostic::new(
                    Rule::BbvDimMismatch,
                    loc(format!("slice {i}")),
                    format!(
                        "slice {i} counts block {block}, but the program has \
                         {num_blocks} block(s)"
                    ),
                ));
            }
        }
    }
    report
}

/// Shared `SA040`/`SA041` weight checks.
fn audit_weights(weights: impl Iterator<Item = f64>, report: &mut Report, label: &str, kind: &str) {
    let mut total = 0.0;
    let mut any = false;
    for (i, w) in weights.enumerate() {
        any = true;
        total += w;
        if !w.is_finite() || w <= 0.0 || w > 1.0 {
            report.push(Diagnostic::new(
                Rule::BadWeight,
                Location::artifact(format!("{label}: {kind} {i}")),
                format!("{kind} {i} has weight {w}, outside (0, 1]"),
            ));
        }
    }
    if any && (total - 1.0).abs() > WEIGHT_SUM_TOLERANCE {
        report.push(Diagnostic::new(
            Rule::WeightSumDrift,
            Location::artifact(label.to_string()),
            format!("{kind} weights sum to {total}, expected 1.0"),
        ));
    }
}

/// `SA049` on a raw point set.
fn audit_point_uniqueness(points: &[SimPoint], label: &str) -> Report {
    let mut report = Report::new();
    let mut by_slice: Vec<u64> = points.iter().map(|p| p.slice).collect();
    by_slice.sort_unstable();
    for w in by_slice.windows(2) {
        if w[0] == w[1] {
            report.push(Diagnostic::new(
                Rule::DuplicatePoints,
                Location::artifact(format!("{label}: point at slice {}", w[0])),
                format!("two points represent the same slice {}", w[0]),
            ));
        }
    }
    let mut by_cluster: Vec<u32> = points.iter().map(|p| p.cluster).collect();
    by_cluster.sort_unstable();
    for w in by_cluster.windows(2) {
        if w[0] == w[1] {
            report.push(Diagnostic::new(
                Rule::DuplicatePoints,
                Location::artifact(format!("{label}: cluster {}", w[0])),
                format!("two points represent the same cluster {}", w[0]),
            ));
        }
    }
    report
}

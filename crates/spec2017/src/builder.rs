//! Expansion of calibration records into buildable workload specs.

use crate::ids::{BenchmarkId, Domain, Suite};
use sampsim_util::rng::Xoshiro256StarStar;
use sampsim_util::scale::Scale;
use sampsim_workload::spec::{InterleaveSpec, Mix, PhaseSpec, StreamGen, WorkloadSpec};
use sampsim_workload::Program;

/// The default slice size the suite is calibrated for (the paper's 30 M
/// instructions, 1/3000-scaled).
pub const DEFAULT_SLICE: u64 = 10_000;

/// Solves a weight profile for `n` phases such that the heaviest prefix
/// reaching 90% of total weight has ~`n90` entries, with every weight at
/// least `min_weight` ("almost insignificant" tail phases still occupy a
/// few slices so clustering can discover them).
///
/// When `dominant` is set, the first phase is pinned to that share (e.g.
/// `503.bwaves_r`'s single ~60% phase, paper §IV-C) and the geometric
/// profile is solved over the remaining phases. Weights are geometric
/// (`w_i ∝ r^i`) with `r` found by bisection; the result is normalized to
/// sum to 1 and sorted descending, and the minimum is enforced exactly by
/// waterfilling.
///
/// # Panics
///
/// Panics unless `1 ≤ n90 ≤ n`, `0 < min_weight < 1/n`, and any `dominant`
/// is in `(min_weight, 0.9)`.
pub fn solve_weights(n: usize, n90: usize, min_weight: f64) -> Vec<f64> {
    solve_weights_with_head(n, n90, min_weight, None)
}

/// [`solve_weights`] with an optional pinned dominant-phase share.
///
/// # Panics
///
/// See [`solve_weights`].
pub fn solve_weights_with_head(
    n: usize,
    n90: usize,
    min_weight: f64,
    dominant: Option<f64>,
) -> Vec<f64> {
    assert!(n >= 1, "need at least one phase");
    assert!((1..=n).contains(&n90), "n90 must be in 1..=n");
    assert!(
        min_weight > 0.0 && min_weight < 1.0 / n as f64,
        "min_weight must be positive and below the uniform weight"
    );
    if let Some(d) = dominant {
        assert!(
            d > min_weight && d < 0.9,
            "dominant share must be in (min_weight, 0.9)"
        );
    }
    if n == 1 {
        return vec![1.0];
    }
    let (head, geo_n, geo_mass) = match dominant {
        Some(d) => (Some(d), n - 1, 1.0 - d),
        None => (None, n, 1.0),
    };
    let weights_for = |r: f64| -> Vec<f64> {
        let raw: Vec<f64> = (0..geo_n).map(|i| r.powi(i as i32).max(1e-300)).collect();
        let total: f64 = raw.iter().sum();
        let mut w: Vec<f64> = match head {
            Some(d) => std::iter::once(d)
                .chain(raw.iter().map(|x| x / total * geo_mass))
                .collect(),
            None => raw.iter().map(|x| x / total).collect(),
        };
        waterfill_min(&mut w, min_weight);
        w.sort_by(|a, b| b.partial_cmp(a).unwrap());
        w
    };
    let count90 = |w: &[f64]| -> usize {
        let mut acc = 0.0;
        for (i, &x) in w.iter().enumerate() {
            acc += x;
            if acc >= 0.9 - 1e-12 {
                return i + 1;
            }
        }
        w.len()
    };
    // count90 is monotone non-decreasing in r (flatter profile -> more
    // points needed); bisect for the target.
    let (mut lo, mut hi) = (0.01f64, 1.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if count90(&weights_for(mid)) >= n90 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    weights_for(hi)
}

/// Raises every entry to at least `min`, paying for it by scaling down the
/// remaining entries, and leaves the vector summing to 1.
fn waterfill_min(w: &mut [f64], min: f64) {
    for _ in 0..w.len() {
        let deficit: f64 = w.iter().filter(|&&x| x < min).map(|&x| min - x).sum();
        if deficit <= 0.0 {
            break;
        }
        let head_sum: f64 = w.iter().filter(|&&x| x >= min).sum();
        let scale = (head_sum - deficit) / head_sum;
        for x in w.iter_mut() {
            if *x < min {
                *x = min;
            } else {
                *x *= scale;
            }
        }
    }
}

/// A calibrated, buildable benchmark description.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    id: BenchmarkId,
    workload: WorkloadSpec,
    points: usize,
    points_90: usize,
}

impl BenchmarkSpec {
    /// Expands the calibration record for `id` into a workload spec.
    pub fn new(id: BenchmarkId) -> Self {
        let c = id.calibration();
        let total_insts = c.whole_minsts * 1_000_000;
        let total_slices = total_insts / DEFAULT_SLICE;
        // Tail phases get at least ~24 slices so clustering can discover
        // them even when their weight is "almost insignificant" (§IV-C).
        let min_weight = 24.0 / total_slices as f64;
        let weights = solve_weights_with_head(c.points, c.points_90, min_weight, c.dominant);
        let mut rng = Xoshiro256StarStar::seed_from_u64(c.seed);
        let mut builder = WorkloadSpec::builder(c.name, c.seed).total_insts(total_insts);
        for (i, &w) in weights.iter().enumerate() {
            builder = builder.phase(phase_for(c.domain, i, w, &mut rng));
        }
        // Long, repetitive phase residencies so most slices are phase-pure
        // (in real workloads phases last tens of millions of instructions).
        // Benchmarks with very few phases (omnetpp) have especially long
        // residencies; a transition slice there would otherwise register as
        // a spurious extra phase.
        let mean_slices = if c.points <= 6 { 160 } else { 96 };
        let workload = builder
            .interleave(InterleaveSpec {
                mean_segment: mean_slices * DEFAULT_SLICE,
                jitter: 0.5,
                align: DEFAULT_SLICE,
            })
            .build();
        Self {
            id,
            workload,
            points: c.points,
            points_90: c.points_90,
        }
    }

    /// The benchmark identity.
    pub fn id(&self) -> BenchmarkId {
        self.id
    }

    /// The SPEC name (e.g. `"505.mcf_r"`).
    pub fn name(&self) -> &str {
        self.id.name()
    }

    /// Sub-suite classification.
    pub fn suite(&self) -> Suite {
        self.id.calibration().suite
    }

    /// Table II's simulation-point count for this benchmark.
    pub fn table2_points(&self) -> usize {
        self.points
    }

    /// Table II's 90th-percentile point count.
    pub fn table2_points_90(&self) -> usize {
        self.points_90
    }

    /// The underlying workload spec.
    pub fn workload(&self) -> &WorkloadSpec {
        &self.workload
    }

    /// Returns a copy with all instruction counts scaled (tests/examples).
    pub fn scaled(&self, scale: Scale) -> Self {
        Self {
            workload: self.workload.scaled(scale),
            ..self.clone()
        }
    }

    /// Builds the program.
    pub fn build(&self) -> Program {
        self.workload.build()
    }
}

/// Produces the `i`-th phase of a benchmark in `domain` with share `weight`.
///
/// Phases of one benchmark share the domain's character but differ in
/// instruction mix, working-set size and branch behaviour, so sampling
/// error is measurable on every reported metric.
fn phase_for(domain: Domain, index: usize, weight: f64, rng: &mut Xoshiro256StarStar) -> PhaseSpec {
    // Per-phase deterministic variation.
    let jit = |rng: &mut Xoshiro256StarStar, lo: f64, hi: f64| lo + (hi - lo) * rng.next_f64();
    let kb = 1u64 << 10;
    let mb = 1u64 << 20;
    match domain {
        Domain::Scripting => PhaseSpec {
            weight,
            mix: Mix::new(jit(rng, 0.30, 0.42), jit(rng, 0.10, 0.16), 0.015),
            n_blocks: 8 + (index % 5),
            block_len: (5, 12),
            streams: vec![
                StreamGen::random((8 + 2 * (index as u64 % 8)) * kb).with_weight(0.86),
                StreamGen::random((96 + 32 * (index as u64 % 3)) * kb).with_weight(0.13),
                StreamGen::random(32 * mb).with_weight(0.01),
            ],
            branch_entropy: jit(rng, 0.06, 0.14),
            block_skew: 0.6,
        },
        Domain::Compiler => PhaseSpec {
            weight,
            mix: Mix::new(jit(rng, 0.32, 0.42), jit(rng, 0.11, 0.17), 0.02),
            n_blocks: 10 + (index % 6),
            block_len: (4, 11),
            streams: vec![
                StreamGen::random((10 + 4 * (index as u64 % 4)) * kb).with_weight(0.82),
                StreamGen::random((128 + 64 * (index as u64 % 2)) * kb).with_weight(0.14),
                StreamGen::random(32 * mb).with_weight(0.04),
            ],
            branch_entropy: jit(rng, 0.08, 0.18),
            block_skew: 0.5,
        },
        Domain::GraphSparse => PhaseSpec {
            weight,
            mix: Mix::new(jit(rng, 0.40, 0.50), jit(rng, 0.08, 0.13), 0.01),
            n_blocks: 6 + (index % 4),
            block_len: (4, 9),
            streams: vec![
                StreamGen::random((12 + 4 * (index as u64 % 5)) * kb).with_weight(0.68),
                StreamGen::chase((32 + 8 * (index as u64 % 5)) * mb).with_weight(0.04),
                StreamGen::random(192 * kb).with_weight(0.20),
                StreamGen::random((32 + 16 * (index as u64 % 3)) * mb).with_weight(0.08),
            ],
            branch_entropy: jit(rng, 0.06, 0.12),
            block_skew: 0.4,
        },
        Domain::DiscreteEvent => PhaseSpec {
            weight,
            mix: Mix::new(jit(rng, 0.36, 0.46), jit(rng, 0.12, 0.18), 0.015),
            n_blocks: 7 + (index % 3),
            block_len: (4, 10),
            streams: vec![
                StreamGen::random((10 + 4 * index as u64) * kb).with_weight(0.80),
                StreamGen::chase((32 + 16 * index as u64) * mb).with_weight(0.03),
                StreamGen::random((128 + 64 * index as u64) * kb).with_weight(0.17),
            ],
            branch_entropy: jit(rng, 0.08, 0.16),
            block_skew: 0.5,
        },
        Domain::Markup => PhaseSpec {
            weight,
            mix: Mix::new(jit(rng, 0.34, 0.46), jit(rng, 0.10, 0.16), 0.02),
            n_blocks: 9 + (index % 5),
            block_len: (4, 10),
            streams: vec![
                StreamGen::random((8 + 3 * (index as u64 % 6)) * kb).with_weight(0.78),
                StreamGen::chase((32 + 8 * (index as u64 % 6)) * mb).with_weight(0.025),
                StreamGen::random((160 + 32 * (index as u64 % 4)) * kb).with_weight(0.15),
                StreamGen::random(32 * mb).with_weight(0.045),
            ],
            branch_entropy: jit(rng, 0.1, 0.2),
            block_skew: 0.5,
        },
        Domain::Media => PhaseSpec {
            weight,
            mix: Mix::new(jit(rng, 0.30, 0.40), jit(rng, 0.12, 0.20), 0.03),
            n_blocks: 8 + (index % 6),
            block_len: (8, 16),
            streams: vec![
                StreamGen::random((12 + 4 * (index as u64 % 4)) * kb).with_weight(0.72),
                StreamGen::streaming((32 + 8 * (index as u64 % 4)) * mb).with_weight(0.16),
                StreamGen::random((96 + 32 * (index as u64 % 3)) * kb).with_weight(0.12),
            ],
            branch_entropy: jit(rng, 0.03, 0.08),
            block_skew: 0.7,
        },
        Domain::GameTree => PhaseSpec {
            weight,
            mix: Mix::new(jit(rng, 0.18, 0.30), jit(rng, 0.05, 0.10), 0.005),
            n_blocks: 9 + (index % 7),
            block_len: (5, 12),
            streams: vec![
                StreamGen::random((8 + 4 * (index as u64 % 4)) * kb).with_weight(0.88),
                StreamGen::chase((64 + 32 * (index as u64 % 3)) * kb).with_weight(0.12),
            ],
            branch_entropy: jit(rng, 0.12, 0.25),
            block_skew: 0.6,
        },
        Domain::Compression => PhaseSpec {
            weight,
            mix: Mix::new(jit(rng, 0.33, 0.43), jit(rng, 0.14, 0.20), 0.02),
            n_blocks: 7 + (index % 4),
            block_len: (6, 13),
            streams: vec![
                StreamGen::random((12 + 6 * (index as u64 % 8)) * kb).with_weight(0.74),
                StreamGen::random((160 + 64 * (index as u64 % 3)) * kb).with_weight(0.14),
                StreamGen::streaming((32 + 16 * (index as u64 % 8)) * mb).with_weight(0.12),
            ],
            branch_entropy: jit(rng, 0.06, 0.14),
            block_skew: 0.5,
        },
        Domain::FpStreaming => PhaseSpec {
            weight,
            mix: Mix::new(jit(rng, 0.36, 0.48), jit(rng, 0.12, 0.20), 0.01),
            n_blocks: 6 + (index % 4),
            block_len: (10, 18),
            streams: vec![
                StreamGen::streaming((32 + 16 * (index as u64 % 6)) * mb).with_weight(0.30),
                StreamGen::random((10 + 2 * (index as u64 % 6)) * kb).with_weight(0.58),
                StreamGen::random((160 + 32 * (index as u64 % 4)) * kb).with_weight(0.12),
            ],
            branch_entropy: jit(rng, 0.01, 0.05),
            block_skew: 0.8,
        },
        Domain::FpCompute => PhaseSpec {
            weight,
            mix: Mix::new(jit(rng, 0.24, 0.34), jit(rng, 0.07, 0.12), 0.005),
            n_blocks: 8 + (index % 5),
            block_len: (10, 18),
            streams: vec![
                StreamGen::streaming((12 + 4 * (index as u64 % 4)) * kb).with_weight(0.88),
                StreamGen::random((128 + 64 * (index as u64 % 3)) * kb).with_weight(0.12),
            ],
            branch_entropy: jit(rng, 0.02, 0.06),
            block_skew: 0.7,
        },
        Domain::FpMixed => PhaseSpec {
            weight,
            mix: Mix::new(jit(rng, 0.30, 0.42), jit(rng, 0.10, 0.16), 0.01),
            n_blocks: 8 + (index % 6),
            block_len: (8, 15),
            streams: vec![
                StreamGen::random((10 + 4 * (index as u64 % 4)) * kb).with_weight(0.72),
                StreamGen::streaming((32 + 8 * (index as u64 % 4)) * mb).with_weight(0.14),
                StreamGen::random((128 + 64 * (index as u64 % 3)) * kb).with_weight(0.08),
                StreamGen::chase((64 + 32 * (index as u64 % 2)) * kb).with_weight(0.06),
            ],
            branch_entropy: jit(rng, 0.04, 0.12),
            block_skew: 0.6,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_weights_hits_target() {
        for (n, n90) in [
            (18usize, 11usize),
            (26, 7),
            (25, 4),
            (23, 19),
            (4, 3),
            (12, 10),
        ] {
            let w = solve_weights(n, n90, 1e-4);
            assert_eq!(w.len(), n);
            let total: f64 = w.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(w.windows(2).all(|p| p[0] >= p[1] - 1e-12), "sorted desc");
            let mut acc = 0.0;
            let mut count = 0;
            for &x in &w {
                acc += x;
                count += 1;
                if acc >= 0.9 - 1e-12 {
                    break;
                }
            }
            assert!(
                (count as i64 - n90 as i64).abs() <= 1,
                "n={n} n90={n90} got {count}: {w:?}"
            );
        }
    }

    #[test]
    fn solve_weights_respects_min() {
        let w = solve_weights(25, 4, 1e-3);
        assert!(w.iter().all(|&x| x >= 1e-3 - 1e-12));
    }

    #[test]
    #[should_panic(expected = "n90 must be in")]
    fn bad_n90_panics() {
        solve_weights(5, 6, 1e-4);
    }

    #[test]
    fn specs_build_at_test_scale() {
        for id in [
            BenchmarkId::McfR,
            BenchmarkId::BwavesR,
            BenchmarkId::Exchange2S,
            BenchmarkId::OmnetppS,
        ] {
            let spec = BenchmarkSpec::new(id).scaled(Scale::TEST);
            let p = spec.build();
            assert_eq!(p.name(), id.name());
            assert_eq!(p.phases().len(), spec.table2_points());
            assert!(p.total_insts() > 100_000, "{id}: {}", p.total_insts());
        }
    }

    #[test]
    fn spec_is_deterministic() {
        let a = BenchmarkSpec::new(BenchmarkId::GccR).build();
        let b = BenchmarkSpec::new(BenchmarkId::GccR).build();
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn phase_weights_match_solved_profile() {
        let spec = BenchmarkSpec::new(BenchmarkId::BwavesR);
        let p = spec.scaled(Scale::new(0.05)).build();
        // The dominant phase of bwaves should hold ~60% of execution
        // (paper §IV-C observes exactly this).
        let total: u64 = p.total_insts();
        let dominant = (0..p.phases().len() as u32)
            .map(|i| p.schedule().phase_insts(i))
            .max()
            .unwrap();
        let share = dominant as f64 / total as f64;
        assert!(
            (0.4..0.8).contains(&share),
            "dominant bwaves phase share {share}"
        );
    }

    #[test]
    fn full_suite_builds_scaled() {
        for spec in crate::suite() {
            let p = spec.scaled(Scale::new(0.02)).build();
            assert!(p.total_insts() > 0);
        }
    }
}

#[cfg(test)]
mod noise_rule_tests {
    use super::*;

    #[test]
    fn dominant_phases_get_low_selection_noise() {
        // bwaves pins a ~60% dominant phase; its block selection must be
        // near-deterministic so clustering does not subdivide it.
        let p = BenchmarkSpec::new(BenchmarkId::BwavesR)
            .scaled(sampsim_util::scale::Scale::new(0.05))
            .build();
        let noises: Vec<f64> = p.phases().iter().map(|ph| ph.selection_noise).collect();
        let min = noises.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = noises.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min <= 0.04, "dominant phase noise {min}");
        assert!(max >= 0.14, "tail phase noise {max}");
    }
}

//! Synthetic SPEC CPU2017: the benchmark suite the paper evaluates,
//! rebuilt as calibrated phase-structured workloads.
//!
//! SPEC CPU2017 itself is license-gated, and the paper's methodology only
//! observes programs through their dynamic basic-block and address streams
//! (see DESIGN.md §2). This crate therefore provides one synthetic workload
//! per benchmark the paper characterized (the 29 rows of its Table II),
//! each calibrated to that benchmark's published character:
//!
//! * **phase count** — the "Number of Simulation Points" column seeds the
//!   number of distinct behaviours the workload cycles through;
//! * **weight skew** — the "90-percentile Simulation Points" column drives
//!   a solved geometric weight profile (e.g. `503.bwaves_r` has one
//!   dominant phase at ~60% plus a long insignificant tail, while
//!   `511.povray_r` is nearly flat);
//! * **domain template** — instruction mix, working sets, branch entropy
//!   and pointer-chasing reflect the benchmark's domain (`505.mcf_r` is a
//!   pointer-chasing graph workload; `519.lbm_r` streams through a large
//!   grid; `548.exchange2_s` is compute/branch heavy with almost no memory
//!   traffic);
//! * **dynamic size** — whole-run instruction counts follow the paper's
//!   1/3000 scaling with FP benchmarks markedly larger than INT, so the
//!   suite-level Whole-vs-Regional reduction lands near the reported
//!   ~650×.
//!
//! # Example
//!
//! ```
//! use sampsim_spec2017::{benchmark, BenchmarkId, Suite};
//! use sampsim_util::scale::Scale;
//!
//! let spec = benchmark(BenchmarkId::BwavesR);
//! assert_eq!(spec.name(), "503.bwaves_r");
//! assert_eq!(spec.suite(), Suite::FpRate);
//! // Build a reduced-scale program for tests:
//! let program = spec.scaled(Scale::TEST).build();
//! assert!(program.total_insts() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod ids;

pub use builder::{solve_weights, solve_weights_with_head, BenchmarkSpec};
pub use ids::{BenchmarkId, Domain, Suite};

/// Returns the calibrated spec for one benchmark.
pub fn benchmark(id: BenchmarkId) -> BenchmarkSpec {
    BenchmarkSpec::new(id)
}

/// Returns specs for the whole suite, in Table II order.
pub fn suite() -> Vec<BenchmarkSpec> {
    BenchmarkId::ALL
        .iter()
        .map(|&id| BenchmarkSpec::new(id))
        .collect()
}

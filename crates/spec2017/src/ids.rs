//! Benchmark identities and Table II calibration data.

/// Sub-suite classification (SPEC's rate/speed × INT/FP split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECrate 2017 Integer.
    IntRate,
    /// SPECspeed 2017 Integer.
    IntSpeed,
    /// SPECrate 2017 Floating Point.
    FpRate,
}

impl Suite {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Suite::IntRate => "INT rate",
            Suite::IntSpeed => "INT speed",
            Suite::FpRate => "FP rate",
        }
    }
}

/// Application-domain template driving a benchmark's phase character.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Interpreters/scripting: branchy, medium random working sets
    /// (perlbench).
    Scripting,
    /// Compilers: big code footprint, mixed pointer/random traffic (gcc).
    Compiler,
    /// Sparse graph optimization: large pointer-chasing working sets (mcf).
    GraphSparse,
    /// Discrete-event simulation: pointer chasing, few phases (omnetpp).
    DiscreteEvent,
    /// XML/markup processing: pointer-heavy, branchy (xalancbmk).
    Markup,
    /// Media encode: streaming + compute kernels (x264).
    Media,
    /// Game-tree search / AI: compute bound, high branch entropy
    /// (deepsjeng, leela, exchange2).
    GameTree,
    /// Data compression: medium random working set (xz).
    Compression,
    /// FP streaming stencil/grid codes: huge sequential working sets,
    /// predictable branches (bwaves, lbm, fotonik3d, cactuBSSN).
    FpStreaming,
    /// FP compute: cache-resident numeric kernels (namd, nab, povray).
    FpCompute,
    /// FP mixed solver/render: blend of streaming and random (parest,
    /// blender, imagick).
    FpMixed,
}

/// One benchmark of the characterized SPEC CPU2017 subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names mirror the benchmark names below
pub enum BenchmarkId {
    PerlbenchR,
    GccR,
    McfR,
    OmnetppR,
    X264R,
    DeepsjengR,
    LeelaR,
    Exchange2R,
    XzR,
    PerlbenchS,
    GccS,
    McfS,
    OmnetppS,
    XalancbmkS,
    X264S,
    DeepsjengS,
    LeelaS,
    Exchange2S,
    XzS,
    BwavesR,
    CactuBssnR,
    NamdR,
    ParestR,
    PovrayR,
    LbmR,
    BlenderR,
    ImagickR,
    NabR,
    Fotonik3dR,
}

/// Per-benchmark calibration record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Calibration {
    pub name: &'static str,
    pub suite: Suite,
    pub domain: Domain,
    /// Table II column 2: number of simulation points.
    pub points: usize,
    /// Table II column 3: points covering the 90th percentile.
    pub points_90: usize,
    /// Whole-run dynamic instructions, in millions (1/3000-scaled).
    pub whole_minsts: u64,
    /// Build seed.
    pub seed: u64,
    /// Pinned share of the dominant phase, for heavily skewed benchmarks
    /// (paper §IV-C notes 503.bwaves_r's single ~60% phase).
    pub dominant: Option<f64>,
}

impl BenchmarkId {
    /// Every benchmark, in Table II order.
    pub const ALL: [BenchmarkId; 29] = [
        BenchmarkId::PerlbenchR,
        BenchmarkId::GccR,
        BenchmarkId::McfR,
        BenchmarkId::OmnetppR,
        BenchmarkId::X264R,
        BenchmarkId::DeepsjengR,
        BenchmarkId::LeelaR,
        BenchmarkId::Exchange2R,
        BenchmarkId::XzR,
        BenchmarkId::PerlbenchS,
        BenchmarkId::GccS,
        BenchmarkId::McfS,
        BenchmarkId::OmnetppS,
        BenchmarkId::XalancbmkS,
        BenchmarkId::X264S,
        BenchmarkId::DeepsjengS,
        BenchmarkId::LeelaS,
        BenchmarkId::Exchange2S,
        BenchmarkId::XzS,
        BenchmarkId::BwavesR,
        BenchmarkId::CactuBssnR,
        BenchmarkId::NamdR,
        BenchmarkId::ParestR,
        BenchmarkId::PovrayR,
        BenchmarkId::LbmR,
        BenchmarkId::BlenderR,
        BenchmarkId::ImagickR,
        BenchmarkId::NabR,
        BenchmarkId::Fotonik3dR,
    ];

    pub(crate) fn calibration(self) -> Calibration {
        use BenchmarkId::*;
        use Domain::*;
        use Suite::*;
        // (name, suite, domain, Table II points, Table II 90th-pct points,
        //  whole-run Minsts, seed)
        let c = |name, suite, domain, points, points_90, whole_minsts, seed| Calibration {
            name,
            suite,
            domain,
            points,
            points_90,
            whole_minsts,
            seed,
            dominant: None,
        };
        let cd =
            |name, suite, domain, points, points_90, whole_minsts, seed, dominant| Calibration {
                name,
                suite,
                domain,
                points,
                points_90,
                whole_minsts,
                seed,
                dominant: Some(dominant),
            };
        match self {
            PerlbenchR => c("500.perlbench_r", IntRate, Scripting, 18, 11, 72, 0x2500),
            GccR => c("502.gcc_r", IntRate, Compiler, 27, 15, 104, 0x2502),
            McfR => c("505.mcf_r", IntRate, GraphSparse, 18, 9, 96, 0x2505),
            OmnetppR => c("520.omnetpp_r", IntRate, DiscreteEvent, 4, 3, 64, 0x2520),
            X264R => c("525.x264_r", IntRate, Media, 23, 15, 88, 0x2525),
            DeepsjengR => c("531.deepsjeng_r", IntRate, GameTree, 20, 15, 80, 0x2531),
            LeelaR => c("541.leela_r", IntRate, GameTree, 19, 12, 76, 0x2541),
            Exchange2R => c("548.exchange2_r", IntRate, GameTree, 21, 16, 84, 0x2548),
            XzR => c("557.xz_r", IntRate, Compression, 13, 7, 72, 0x2557),
            PerlbenchS => c("600.perlbench_s", IntSpeed, Scripting, 21, 13, 120, 0x2600),
            GccS => cd("602.gcc_s", IntSpeed, Compiler, 15, 5, 112, 0x2602, 0.50),
            McfS => c("605.mcf_s", IntSpeed, GraphSparse, 28, 14, 160, 0x2605),
            OmnetppS => c("620.omnetpp_s", IntSpeed, DiscreteEvent, 3, 2, 72, 0x2620),
            XalancbmkS => c("623.xalancbmk_s", IntSpeed, Markup, 25, 19, 96, 0x2623),
            X264S => c("625.x264_s", IntSpeed, Media, 19, 13, 104, 0x2625),
            DeepsjengS => c("631.deepsjeng_s", IntSpeed, GameTree, 12, 10, 88, 0x2631),
            LeelaS => c("641.leela_s", IntSpeed, GameTree, 20, 13, 92, 0x2641),
            Exchange2S => c("648.exchange2_s", IntSpeed, GameTree, 19, 15, 100, 0x2648),
            XzS => c("657.xz_s", IntSpeed, Compression, 18, 10, 112, 0x2657),
            BwavesR => cd(
                "503.bwaves_r",
                FpRate,
                FpStreaming,
                26,
                7,
                256,
                0x2503,
                0.60,
            ),
            CactuBssnR => cd(
                "507.cactuBSSN_r",
                FpRate,
                FpStreaming,
                25,
                4,
                224,
                0x2507,
                0.62,
            ),
            NamdR => c("508.namd_r", FpRate, FpCompute, 26, 17, 176, 0x2508),
            ParestR => c("510.parest_r", FpRate, FpMixed, 23, 14, 192, 0x2510),
            PovrayR => c("511.povray_r", FpRate, FpCompute, 23, 19, 144, 0x2511),
            LbmR => cd("519.lbm_r", FpRate, FpStreaming, 22, 8, 240, 0x2519, 0.45),
            BlenderR => c("526.blender_r", FpRate, FpMixed, 22, 14, 160, 0x2526),
            ImagickR => c("538.imagick_r", FpRate, FpMixed, 14, 7, 152, 0x2538),
            NabR => c("544.nab_r", FpRate, FpCompute, 22, 10, 136, 0x2544),
            Fotonik3dR => c("549.fotonik3d_r", FpRate, FpStreaming, 27, 11, 208, 0x2549),
        }
    }

    /// The SPEC benchmark name (e.g. `"505.mcf_r"`).
    pub fn name(self) -> &'static str {
        self.calibration().name
    }

    /// Looks a benchmark up by its SPEC name.
    pub fn from_name(name: &str) -> Option<BenchmarkId> {
        BenchmarkId::ALL.iter().copied().find(|b| b.name() == name)
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_nine_benchmarks() {
        assert_eq!(BenchmarkId::ALL.len(), 29);
        let mut names: Vec<&str> = BenchmarkId::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 29, "names must be unique");
    }

    #[test]
    fn table2_averages_match_paper() {
        // Paper Table II: average 19.75 points, 11.31 at the 90th pct.
        let n = BenchmarkId::ALL.len() as f64;
        let avg_points: f64 = BenchmarkId::ALL
            .iter()
            .map(|b| b.calibration().points as f64)
            .sum::<f64>()
            / n;
        let avg_90: f64 = BenchmarkId::ALL
            .iter()
            .map(|b| b.calibration().points_90 as f64)
            .sum::<f64>()
            / n;
        // The paper averages over 30 rows including a blank-ish layout; our
        // 29 entries reproduce the same numbers to within rounding.
        assert!((avg_points - 19.75).abs() < 0.5, "avg points {avg_points}");
        assert!((avg_90 - 11.31).abs() < 0.5, "avg 90pct {avg_90}");
    }

    #[test]
    fn from_name_roundtrips() {
        for id in BenchmarkId::ALL {
            assert_eq!(BenchmarkId::from_name(id.name()), Some(id));
        }
        assert_eq!(BenchmarkId::from_name("999.nope"), None);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(BenchmarkId::McfR.to_string(), "505.mcf_r");
    }

    #[test]
    fn fp_benchmarks_are_larger_on_average() {
        let (mut int_sum, mut int_n, mut fp_sum, mut fp_n) = (0u64, 0u64, 0u64, 0u64);
        for id in BenchmarkId::ALL {
            let c = id.calibration();
            if c.suite == Suite::FpRate {
                fp_sum += c.whole_minsts;
                fp_n += 1;
            } else {
                int_sum += c.whole_minsts;
                int_n += 1;
            }
        }
        assert!(fp_sum / fp_n > int_sum / int_n);
    }
}

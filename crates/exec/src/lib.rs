//! Deterministic parallel execution for sampsim.
//!
//! Every replayable unit in the PinPoints flow — a regional pinball, a
//! shard of the whole-program profiling pass, a benchmark in a suite
//! sweep — is independent of its siblings, so the hot paths fan them out
//! over a worker pool. The non-negotiable contract is **bit-identical
//! results regardless of the job count**: parallelism may only change
//! wall-clock time, never a single output bit (the differential harness
//! in `tests/parallel_differential.rs` enforces this).
//!
//! Two rules make that hold:
//!
//! 1. **No shared mutable state.** Workers receive a shared `&` view of
//!    the inputs and build private outputs; anything stateful (RNG,
//!    cache models, BBV accumulators) is constructed per work item from
//!    a deterministic seed or checkpoint.
//! 2. **Reduction in item order.** [`parallel_map`] returns results
//!    indexed exactly like its input slice, so every downstream fold —
//!    including floating-point reductions, which are not associative —
//!    sees the same operand order a serial run would.
//!
//! The pool is a hand-rolled `std::thread::scope` work-stealing loop
//! rather than rayon: simulation results must be reproducible across
//! environments, and this build is fully self-contained (no external
//! crates), so the ~100 lines of pool are the whole dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::num::NonZeroUsize;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Worker-count configuration for the parallel hot paths.
///
/// `Auto` resolves to the machine's available parallelism at the moment
/// [`Jobs::get`] is called; an explicit count pins the pool size. A
/// count of 1 (or a single-item workload) bypasses the pool entirely and
/// runs inline on the caller's thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Jobs {
    /// Use every hardware thread the host reports.
    #[default]
    Auto,
    /// Use exactly this many workers.
    N(NonZeroUsize),
}

/// A single worker: the serial reference configuration.
pub const SERIAL: Jobs = Jobs::N(NonZeroUsize::MIN);

impl Jobs {
    /// An explicit worker count.
    ///
    /// # Errors
    ///
    /// Returns an error message for a zero count.
    pub fn new(n: usize) -> Result<Self, String> {
        NonZeroUsize::new(n)
            .map(Jobs::N)
            .ok_or_else(|| "--jobs must be at least 1".to_string())
    }

    /// Resolves to a concrete worker count (at least 1).
    pub fn get(self) -> usize {
        match self {
            Jobs::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            Jobs::N(n) => n.get(),
        }
    }
}

impl FromStr for Jobs {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        if s == "auto" {
            return Ok(Jobs::Auto);
        }
        let n: usize = s
            .parse()
            .map_err(|_| format!("bad --jobs value: {s} (expected a count or 'auto')"))?;
        Jobs::new(n)
    }
}

impl fmt::Display for Jobs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Jobs::Auto => write!(f, "auto"),
            Jobs::N(n) => write!(f, "{n}"),
        }
    }
}

/// Maps `f` over `items` on up to `jobs` workers, returning results in
/// input order.
///
/// `f` receives the item index alongside the item so per-item labels and
/// seeds stay deterministic. Items are claimed from a shared atomic
/// counter (dynamic scheduling — a slow item does not stall its
/// neighbours), but the output vector is assembled by index, so callers
/// observe exactly the serial result order.
///
/// # Panics
///
/// Propagates the first worker panic (by join order) after all workers
/// have stopped.
pub fn parallel_map<T, R, F>(jobs: Jobs, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.get().min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                if tx.send((i, r)).is_err() {
                    break;
                }
            }));
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        // Join explicitly so a worker's own panic payload (an assertion
        // from the differential harness, say) surfaces instead of a
        // generic "missing result" message.
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index produced a result"))
            .collect()
    })
}

/// Streaming [`parallel_map`]: maps `f` over `items` on up to `jobs`
/// workers and delivers each result to `sink` **in input order, as soon
/// as the ordered prefix is complete** — result `i` is delivered the
/// moment items `0..=i` have all finished, without waiting for the rest
/// of the batch.
///
/// This is the fan-out shape the fleet router's batch op needs: a suite
/// sweep streams per-benchmark reply lines back to the client while
/// later benchmarks are still executing, yet the line order is exactly
/// the serial order, so the byte stream is deterministic for every job
/// count. Out-of-order completions wait in a reorder buffer bounded by
/// the item count.
///
/// # Panics
///
/// Propagates the first worker panic (by join order) after all workers
/// have stopped; `sink` runs on the calling thread and may panic freely.
pub fn parallel_stream<T, R, F, S>(jobs: Jobs, items: &[T], f: F, mut sink: S)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    S: FnMut(usize, R),
{
    let workers = jobs.get().min(items.len());
    if workers <= 1 {
        for (i, t) in items.iter().enumerate() {
            sink(i, f(i, t));
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                if tx.send((i, r)).is_err() {
                    break;
                }
            }));
        }
        drop(tx);
        // Reorder buffer: deliver the contiguous prefix as it completes.
        let mut pending: Vec<Option<R>> =
            std::iter::repeat_with(|| None).take(items.len()).collect();
        let mut delivered = 0;
        for (i, r) in rx {
            pending[i] = Some(r);
            while delivered < items.len() {
                match pending[delivered].take() {
                    Some(r) => {
                        sink(delivered, r);
                        delivered += 1;
                    }
                    None => break,
                }
            }
        }
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
        assert_eq!(delivered, items.len(), "every index streamed a result");
    });
}

/// Fallible [`parallel_map`]: maps `f` over `items` and returns either
/// every success (in input order) or the error belonging to the
/// *lowest-indexed* failing item — the same error a serial loop would
/// have returned first.
///
/// All items run to completion even when one fails; error selection is
/// therefore independent of worker scheduling.
///
/// # Errors
///
/// Returns the lowest-indexed error produced by `f`.
pub fn try_parallel_map<T, R, E, F>(jobs: Jobs, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let results = parallel_map(jobs, items, f);
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_parsing() {
        assert_eq!("auto".parse::<Jobs>().unwrap(), Jobs::Auto);
        assert_eq!("3".parse::<Jobs>().unwrap(), Jobs::new(3).unwrap());
        assert!("0".parse::<Jobs>().is_err());
        assert!("-1".parse::<Jobs>().is_err());
        assert!("two".parse::<Jobs>().is_err());
        assert!(Jobs::new(0).is_err());
        assert_eq!(SERIAL.get(), 1);
        assert!(Jobs::Auto.get() >= 1);
        assert_eq!(Jobs::new(7).unwrap().to_string(), "7");
        assert_eq!(Jobs::Auto.to_string(), "auto");
    }

    #[test]
    fn map_preserves_order_for_every_job_count() {
        let items: Vec<u64> = (0..101).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [
            SERIAL,
            Jobs::new(2).unwrap(),
            Jobs::new(7).unwrap(),
            Jobs::Auto,
        ] {
            let got = parallel_map(jobs, &items, |_, &x| x * x);
            assert_eq!(got, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn map_passes_matching_index() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = parallel_map(Jobs::new(3).unwrap(), &items, |i, &s| (i, s));
        for (i, (gi, gs)) in got.iter().enumerate() {
            assert_eq!(*gi, i);
            assert_eq!(*gs, items[i]);
        }
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = vec![1, 2];
        let got = parallel_map(Jobs::new(16).unwrap(), &items, |_, &x| x + 1);
        assert_eq!(got, vec![2, 3]);
        let empty: Vec<i32> = vec![];
        assert!(parallel_map(Jobs::new(4).unwrap(), &empty, |_, &x: &i32| x).is_empty());
    }

    #[test]
    fn stream_delivers_in_input_order_for_every_job_count() {
        let items: Vec<u64> = (0..73).collect();
        let expect: Vec<(usize, u64)> = items.iter().map(|&x| (x as usize, x * 3)).collect();
        for jobs in [
            SERIAL,
            Jobs::new(2).unwrap(),
            Jobs::new(7).unwrap(),
            Jobs::Auto,
        ] {
            let mut got = Vec::new();
            parallel_stream(jobs, &items, |_, &x| x * 3, |i, r| got.push((i, r)));
            assert_eq!(got, expect, "jobs = {jobs}");
        }
        let empty: Vec<u64> = vec![];
        let mut calls = 0;
        parallel_stream(Jobs::new(4).unwrap(), &empty, |_, &x| x, |_, _| calls += 1);
        assert_eq!(calls, 0);
    }

    #[test]
    fn stream_delivers_prefix_before_the_batch_finishes() {
        // Item 0 is slow; items 1.. are instant. With >= 2 workers the
        // fast items pile into the reorder buffer and must all flush the
        // moment item 0 lands — order stays serial regardless.
        let items: Vec<u64> = (0..16).collect();
        let mut got = Vec::new();
        parallel_stream(
            Jobs::new(4).unwrap(),
            &items,
            |i, &x| {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
                x
            },
            |i, r| got.push((i, r)),
        );
        let expect: Vec<(usize, u64)> = items.iter().map(|&x| (x as usize, x)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn try_map_returns_lowest_indexed_error() {
        let items: Vec<usize> = (0..50).collect();
        for jobs in [SERIAL, Jobs::new(2).unwrap(), Jobs::new(7).unwrap()] {
            let r: Result<Vec<usize>, usize> =
                try_parallel_map(
                    jobs,
                    &items,
                    |i, &x| {
                        if i % 13 == 12 {
                            Err(i)
                        } else {
                            Ok(x)
                        }
                    },
                );
            assert_eq!(r.unwrap_err(), 12, "jobs = {jobs}");
        }
        let ok: Result<Vec<usize>, usize> =
            try_parallel_map(Jobs::new(3).unwrap(), &items, |_, &x| Ok(x));
        assert_eq!(ok.unwrap(), items);
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let items: Vec<u32> = (0..20).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_map(Jobs::new(4).unwrap(), &items, |_, &x| {
                assert!(x != 11, "item eleven exploded");
                x
            })
        });
        let payload = caught.unwrap_err();
        // A format-less assert! panics with &'static str; formatted ones
        // with String. Accept either.
        let msg = payload
            .downcast_ref::<&'static str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("item eleven exploded"), "{msg}");
    }
}

#!/usr/bin/env bash
# Repository gate: formatting, lints, tests and the sampsim lint pass.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo test (property suite)"
cargo test -q -p sampsim --features property-tests --test property_tests

echo "==> sampsim lint --deny-warnings"
# Small scale keeps the suite-wide workload build fast; findings do not
# depend on scale (run-length rules are proportionality checks).
cargo run --release -q -p sampsim-cli -- lint --scale 0.01 --deny-warnings

echo "all checks passed"

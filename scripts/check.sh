#!/usr/bin/env bash
# Repository gate: formatting, lints, tests and the sampsim lint pass.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo test (property suite)"
cargo test -q -p sampsim --features property-tests --test property_tests

echo "==> sampsim lint --deny-warnings"
# Small scale keeps the suite-wide workload build fast; findings do not
# depend on scale (run-length rules are proportionality checks).
cargo run --release -q -p sampsim-cli -- lint --scale 0.01 --deny-warnings

echo "==> sampsim lint --format json (schema check)"
# Every diagnostic line must conform to the documented JSON shape. The
# maxk-0 config guarantees at least one diagnostic flows through; lint
# exits 1 on findings by design, so only exit codes >= 2 are failures.
{ cargo run --release -q -p sampsim-cli -- lint omnetpp_s --scale 0.002 --maxk 0 --format json \
    || [ "$?" -eq 1 ]; } \
    | cargo run --release -q -p sampsim-analyze --example validate_lint_json

echo "==> sampsim audit (dynamic differential, full suite)"
# The executor oracle: profiles every benchmark and checks the dynamic
# BBVs and slice cursors against bounds derived statically from the
# schedule. A clean executor can never fire these.
cargo run --release -q -p sampsim-cli -- audit --scale 0.002 --deny-warnings 2> /dev/null

echo "==> sampsim audit --artifacts (shipped .art summaries)"
# The committed summaries pin the scale-0.01 builds; any drift in the
# generators or the bounds derivation fails here.
cargo run --release -q -p sampsim-cli -- audit --scale 0.01 --deny-warnings --artifacts artifacts

echo "==> sampsim perf --quick (kernel smoke + scaling grid + regression gate)"
# Times the optimized kernels against their naive references at smoke
# sizes — every timed pair is asserted identical — runs the quick
# streaming scaling point (peak-RSS asserted inside the harness), and
# gates the size-normalized rates against the committed baseline: any
# shared metric more than 10% slower fails.
perf_report="$(mktemp)"
serve_dir="$(mktemp -d)"
trap 'rm -rf "$perf_report" "$serve_dir"' EXIT
cargo run --release -q -p sampsim-cli -- perf --quick -o "$perf_report" \
    --baseline BENCH_kernels.json > /dev/null
cargo run --release -q -p sampsim-cli -- perf --validate "$perf_report"
cargo run --release -q -p sampsim-cli -- perf --validate BENCH_kernels.json
# The committed full-run baseline must hold the paper-grade cache bound:
# the packed probe at or below 15 ns/access.
python3 - <<'EOF'
import json
with open("BENCH_kernels.json") as f:
    report = json.load(f)
cache = next(k for k in report["kernels"] if k["name"] == "cache_access_rw")
ns = cache["details"]["ns_per_access"]
assert ns <= 15.0, f"committed cache probe is {ns} ns/access (bound: 15)"
# The committed scaling grid must include the million-slice streaming
# point, and its measured footprint must stay far below what the
# materialized path would need.
point = next(
    p for p in report["scaling"] if p["slices"] == 1_000_000 and p["max_k"] == 35
)
rss = point["streamed_rss_delta_bytes"]
assert rss is None or rss <= 64 << 20, f"streamed RSS delta {rss} exceeds 64 MiB"
assert point["materialized_estimate_bytes"] > 200 << 20, "estimate formula drifted"
EOF

echo "==> sampsim serve smoke (daemon reply == run stdout)"
# Starts the daemon on an ephemeral port, sends one request, checks the
# reply is byte-identical to `sampsim run` stdout, then shuts it down
# gracefully and requires exit code 0.
cargo build --release -q -p sampsim-cli
sampsim_bin="target/release/sampsim"
bench_args=(omnetpp_s --scale 0.002 --maxk 6)
"$sampsim_bin" serve --addr 127.0.0.1:0 --cache-dir "$serve_dir/cache" --jobs 2 \
    > "$serve_dir/announce" 2> /dev/null &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^sampsim-serve listening on //p' "$serve_dir/announce")"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve smoke: daemon never announced its address" >&2; exit 1; }
"$sampsim_bin" run "${bench_args[@]}" > "$serve_dir/direct.json" 2> /dev/null
"$sampsim_bin" request "${bench_args[@]}" --addr "$addr" > "$serve_dir/reply.json" 2> /dev/null
cmp "$serve_dir/direct.json" "$serve_dir/reply.json" \
    || { echo "serve smoke: served reply != run stdout" >&2; exit 1; }
"$sampsim_bin" request --stats --addr "$addr" > /dev/null
"$sampsim_bin" request --shutdown --addr "$addr" > /dev/null
wait "$serve_pid" || { echo "serve smoke: daemon exited non-zero" >&2; exit 1; }

echo "==> sampsim fleet smoke (2-shard routed reply == run stdout)"
# Spins a 2-shard fleet on an ephemeral port, routes one request through
# the router, checks the reply is byte-identical to `sampsim run`
# stdout, queries fleet-wide stats, then shuts the whole topology down
# gracefully and requires exit code 0.
"$sampsim_bin" fleet --shards 2 --addr 127.0.0.1:0 --jobs 2 \
    > "$serve_dir/fleet_announce" 2> /dev/null &
fleet_pid=$!
fleet_addr=""
for _ in $(seq 1 100); do
    fleet_addr="$(sed -n 's/^sampsim-fleet (2 shards) listening on //p' "$serve_dir/fleet_announce")"
    [ -n "$fleet_addr" ] && break
    sleep 0.1
done
[ -n "$fleet_addr" ] || { echo "fleet smoke: router never announced its address" >&2; exit 1; }
"$sampsim_bin" request "${bench_args[@]}" --addr "$fleet_addr" > "$serve_dir/fleet_reply.json" 2> /dev/null
cmp "$serve_dir/direct.json" "$serve_dir/fleet_reply.json" \
    || { echo "fleet smoke: routed reply != run stdout" >&2; exit 1; }
"$sampsim_bin" request --stats --addr "$fleet_addr" | grep -q '"shards":2' \
    || { echo "fleet smoke: stats reply lacks fleet fields" >&2; exit 1; }
"$sampsim_bin" request --shutdown --addr "$fleet_addr" > /dev/null
wait "$fleet_pid" || { echo "fleet smoke: fleet exited non-zero" >&2; exit 1; }

echo "==> sampsim loadgen --quick (serving-stack benchmark + schema gate)"
# Drives a quick concurrent cold/warm load through an ephemeral
# in-process fleet, validates the fresh report, and validates the
# committed BENCH_serve.json baseline against the same schema.
loadgen_report="$serve_dir/loadgen.json"
"$sampsim_bin" loadgen --quick -o "$loadgen_report" > /dev/null 2> /dev/null
"$sampsim_bin" loadgen --validate "$loadgen_report"
"$sampsim_bin" loadgen --validate BENCH_serve.json

echo "==> sampsim compare smoke (all strategies vs whole-program truth)"
# Quick-scale cross-strategy study on one benchmark, then validate the
# report against the sampsim-compare/v1 schema AND the strategy registry
# (the validator fails when a registered strategy is missing a row).
compare_report="$serve_dir/compare.json"
"$sampsim_bin" compare omnetpp_s --scale 0.002 --maxk 6 --reps 2 \
    -o "$compare_report" > /dev/null 2> /dev/null
"$sampsim_bin" compare --validate "$compare_report"
# Belt and braces against registry drift: every strategy the CLI itself
# advertises in its usage text must have a row in the report, so adding a
# strategy to the CLI without teaching `compare` about it fails loudly.
cli_strategies="$("$sampsim_bin" help | sed -n '/one of:/{n;s/;.*//;s/,/ /g;p;}')"
[ -n "$cli_strategies" ] \
    || { echo "compare smoke: could not read the strategy list from 'sampsim help'" >&2; exit 1; }
for name in $cli_strategies; do
    grep -q "\"strategy\":\"$name\"" "$compare_report" \
        || { echo "compare smoke: CLI strategy '$name' missing from the compare report" >&2; exit 1; }
done

echo "==> sampsim plan smoke (static planner, every advertised strategy)"
# Planning is pure static analysis: for every strategy the CLI
# advertises, render a plan, validate it against the sampsim-plan/v1
# schema, and check the plan names the strategy it was asked for. Reuses
# the advertised-strategy list extracted above so a strategy added to
# the CLI without a working planner fails loudly.
for name in $cli_strategies; do
    plan_report="$serve_dir/plan-$name.json"
    "$sampsim_bin" plan omnetpp_s --scale 0.002 --maxk 6 --strategy "$name" \
        -o "$plan_report" > /dev/null 2> /dev/null
    "$sampsim_bin" plan --validate "$plan_report"
    grep -q "\"strategy\":\"$name\"" "$plan_report" \
        || { echo "plan smoke: plan for '$name' does not name it" >&2; exit 1; }
done
# The linter's rule catalogue must answer for the planner's soundness
# rules (the docs drift test pins the full registry; this pins the CLI
# plumbing end to end).
"$sampsim_bin" lint --explain SA140 > /dev/null
"$sampsim_bin" lint --explain SA145 > /dev/null
"$sampsim_bin" lint --explain SA150 > /dev/null

echo "all checks passed"

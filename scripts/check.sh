#!/usr/bin/env bash
# Repository gate: formatting, lints, tests and the sampsim lint pass.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo test (property suite)"
cargo test -q -p sampsim --features property-tests --test property_tests

echo "==> sampsim lint --deny-warnings"
# Small scale keeps the suite-wide workload build fast; findings do not
# depend on scale (run-length rules are proportionality checks).
cargo run --release -q -p sampsim-cli -- lint --scale 0.01 --deny-warnings

echo "==> sampsim perf --quick (kernel smoke + report schema)"
# Times the optimized kernels against their naive references at smoke
# sizes — every timed pair is asserted bit-identical — then validates
# the emitted report and the committed baseline against the schema.
perf_report="$(mktemp)"
trap 'rm -f "$perf_report"' EXIT
cargo run --release -q -p sampsim-cli -- perf --quick -o "$perf_report" > /dev/null
cargo run --release -q -p sampsim-cli -- perf --validate "$perf_report"
cargo run --release -q -p sampsim-cli -- perf --validate BENCH_kernels.json

echo "all checks passed"

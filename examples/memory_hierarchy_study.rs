//! Memory-hierarchy exploration with simulation points — the paper's
//! cautionary tale (§IV-D).
//!
//! Replaying simulation points with cold caches inflates LLC miss rates so
//! badly that a design study comparing two L3 sizes can rank them
//! incorrectly. Checkpointed cache warmup restores the whole-run
//! conclusion. Run with:
//!
//! ```text
//! cargo run --release --example memory_hierarchy_study
//! ```

use sampsim::cache::{configs, CacheConfig, HierarchyConfig};
use sampsim::core::metrics::aggregate_weighted;
use sampsim::core::runs::{run_regions_functional, run_whole_functional, WarmupMode};
use sampsim::core::{PinPointsConfig, Pipeline};
use sampsim::spec2017::{benchmark, BenchmarkId};
use sampsim::util::scale::Scale;

fn with_l3(base: HierarchyConfig, l3_bytes: u64) -> HierarchyConfig {
    HierarchyConfig {
        l3: CacheConfig::new(l3_bytes, 1, 32, 36),
        ..base
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::new(0.1);
    let spec = benchmark(BenchmarkId::McfS).scaled(scale);
    let program = spec.build();
    let config = PinPointsConfig {
        slice_size: scale.apply(10_000),
        ..PinPointsConfig::default()
    };
    let pipeline = Pipeline::new(config).run(&program)?;
    println!(
        "{}: {} simulation points over {} slices\n",
        spec.name(),
        pipeline.regional.len(),
        pipeline.num_slices
    );

    // Candidate designs: a 4 MB vs a 16 MB LLC.
    let designs = [
        ("L3 = 4MB", with_l3(configs::allcache_table1(), 4 << 20)),
        ("L3 = 16MB", with_l3(configs::allcache_table1(), 16 << 20)),
    ];
    println!(
        "{:<12} {:>12} {:>16} {:>16}",
        "design", "whole L3%", "cold regions L3%", "warm regions L3%"
    );
    let mut rows = Vec::new();
    for (label, cfg) in designs {
        let whole = run_whole_functional(&program, cfg);
        let cold = aggregate_weighted(&run_regions_functional(
            &program,
            &pipeline.regional,
            cfg,
            WarmupMode::None,
        )?);
        let warm = aggregate_weighted(&run_regions_functional(
            &program,
            &pipeline.regional,
            cfg,
            WarmupMode::Checkpointed,
        )?);
        let whole_l3 = whole
            .cache
            .as_ref()
            .expect("cache stats")
            .l3
            .miss_rate_pct();
        let cold_l3 = cold.miss_rates.expect("cache stats").l3;
        let warm_l3 = warm.miss_rates.expect("cache stats").l3;
        println!("{label:<12} {whole_l3:>12.2} {cold_l3:>16.2} {warm_l3:>16.2}");
        rows.push((label, whole_l3, cold_l3, warm_l3));
    }

    let whole_gain = rows[0].1 - rows[1].1;
    let cold_gain = rows[0].2 - rows[1].2;
    let warm_gain = rows[0].3 - rows[1].3;
    println!("\nL3 miss-rate improvement from 4MB -> 16MB:");
    println!("  whole run:        {whole_gain:+.2} pp  (ground truth)");
    println!("  cold regions:     {cold_gain:+.2} pp");
    println!("  warmed regions:   {warm_gain:+.2} pp");
    println!(
        "\ncold-start bias overstates every miss rate; relative design deltas shift by {:+.2} pp.",
        cold_gain - whole_gain
    );
    println!("Use warmup (or longer slices) before drawing memory-hierarchy conclusions.");
    Ok(())
}

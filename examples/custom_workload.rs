//! Authoring a custom workload and sampling it.
//!
//! Shows the full public API surface: describing phases with the builder,
//! checkpointing/replaying by hand with pinballs, attaching your own
//! Pintool, and comparing SimPoint selection against periodic and random
//! baselines.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use sampsim::cache::configs;
use sampsim::core::metrics::{aggregate_weighted, whole_as_aggregate};
use sampsim::core::runs::{run_regions_functional, run_whole_functional, WarmupMode};
use sampsim::core::{PinPointsConfig, Pipeline};
use sampsim::pin::{engine, Pintool};
use sampsim::pinball::Logger;
use sampsim::simpoint::baselines;
use sampsim::workload::spec::{InterleaveSpec, Mix, PhaseSpec, StreamGen, WorkloadSpec};
use sampsim::workload::{Executor, Retired};

/// A custom Pintool: tracks the hottest basic block.
#[derive(Default)]
struct HottestBlock {
    counts: std::collections::HashMap<u32, u64>,
}

impl Pintool for HottestBlock {
    fn on_inst(&mut self, inst: &Retired) {
        *self.counts.entry(inst.block).or_default() += 1;
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a three-phase workload: a cache-friendly compute kernel,
    //    a streaming sweep, and a pointer-chasing traversal.
    let spec = WorkloadSpec::builder("my-workload", 2024)
        .total_insts(3_000_000)
        .phase(PhaseSpec {
            weight: 0.5,
            mix: Mix::new(0.25, 0.08, 0.01),
            n_blocks: 9,
            block_len: (8, 14),
            streams: vec![StreamGen::streaming(64 << 10)],
            branch_entropy: 0.1,
            block_skew: 0.7,
        })
        .phase(PhaseSpec {
            weight: 0.3,
            mix: Mix::new(0.42, 0.18, 0.02),
            n_blocks: 5,
            block_len: (10, 16),
            streams: vec![StreamGen::streaming(24 << 20)],
            branch_entropy: 0.05,
            block_skew: 0.5,
        })
        .phase(PhaseSpec {
            weight: 0.2,
            mix: Mix::new(0.45, 0.1, 0.01),
            n_blocks: 7,
            block_len: (4, 8),
            streams: vec![StreamGen::chase(8 << 20)],
            branch_entropy: 0.5,
            block_skew: 0.4,
        })
        .interleave(InterleaveSpec {
            mean_segment: 60_000,
            jitter: 0.4,
            align: 0,
        })
        .build();
    let program = spec.build();
    println!(
        "built '{}': {} blocks, {} streams, {} instructions",
        program.name(),
        program.blocks().len(),
        program.num_streams(),
        program.total_insts()
    );

    // 2. Drive a custom Pintool over the first million instructions.
    let mut exec = Executor::new(&program);
    let mut hot = HottestBlock::default();
    engine::run_one(&mut exec, 1_000_000, &mut hot);
    let (&block, &count) = hot
        .counts
        .iter()
        .max_by_key(|&(_, c)| c)
        .expect("non-empty");
    println!("hottest block in the first 1M instructions: block {block} ({count} instructions)");

    // 3. Checkpoint by hand: capture slice starts, replay slice 100.
    let starts = Logger::new(&program).slice_starts(10_000);
    let mut replay = Executor::with_cursor(&program, starts[100].clone());
    assert_eq!(replay.retired(), 1_000_000);
    let first = replay.next_inst().expect("program continues");
    println!(
        "replay of slice 100 starts at pc {:#x} in block {}",
        first.pc, first.block
    );

    // 4. SimPoint vs baseline samplers, same point budget.
    let config = PinPointsConfig {
        slice_size: 10_000,
        ..PinPointsConfig::default()
    };
    let pipeline = Pipeline::new(config.clone()).run(&program)?;
    let budget = pipeline.regional.len();
    let num_slices = pipeline.num_slices;
    let whole = run_whole_functional(&program, configs::allcache_table1());
    let reference = whole_as_aggregate(&whole);

    let pipe = Pipeline::new(config);
    let (_bbvs, starts, _m) = pipe.profile(&program);
    let report = |label: &str, points: Vec<sampsim::simpoint::SimPoint>| {
        let fake = sampsim::simpoint::SimPointsResult {
            k: points.len(),
            slice_size: 10_000,
            assignments: vec![],
            points,
            bic_scores: vec![],
            avg_variance: 0.0,
        };
        let regional = pipe.regionals_for(&program, &fake, &starts);
        let metrics = run_regions_functional(
            &program,
            &regional,
            configs::allcache_table1(),
            WarmupMode::None,
        )
        .expect("replay");
        let agg = aggregate_weighted(&metrics);
        let mix_err: f64 = agg
            .mix_pct
            .iter()
            .zip(&reference.mix_pct)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        println!("  {label:<22} mix error {mix_err:>6.3} pp");
    };
    println!("\nsampling with {budget} points (vs whole run):");
    report("SimPoint", pipeline.simpoints.points.clone());
    report("periodic baseline", baselines::periodic(num_slices, budget));
    report(
        "random baseline",
        baselines::uniform_random(num_slices, budget, 7),
    );
    Ok(())
}

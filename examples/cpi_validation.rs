//! CPI validation: native hardware vs Sniper on simulation points
//! (the paper's Fig. 12 experiment for a single benchmark).
//!
//! ```text
//! cargo run --release --example cpi_validation
//! ```

use sampsim::cache::configs;
use sampsim::core::metrics::aggregate_weighted;
use sampsim::core::runs::{run_regions_timing, run_whole_timing, WarmupMode};
use sampsim::core::{PinPointsConfig, Pipeline};
use sampsim::spec2017::{benchmark, BenchmarkId};
use sampsim::uarch::{run_native, CoreConfig, NativeConfig};
use sampsim::util::scale::Scale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::new(0.1);
    let spec = benchmark(BenchmarkId::XzS).scaled(scale);
    let program = spec.build();

    // Simulation points.
    let config = PinPointsConfig {
        slice_size: scale.apply(10_000),
        ..PinPointsConfig::default()
    };
    let pipeline = Pipeline::new(config).run(&program)?;

    // "Native hardware": whole program on the modelled i7-3770 with perf
    // counters (three runs to show run-to-run nondeterminism).
    println!("{} on the Table III machine:\n", spec.name());
    let native_cfg = NativeConfig::default();
    let mut native_cpis = Vec::new();
    for run in 0..3u64 {
        let perf = run_native(&program, configs::i7_table3(), &native_cfg, run);
        println!(
            "  native run {}: {} instructions, {} cycles, CPI {:.4}",
            run + 1,
            perf.instructions,
            perf.cpu_cycles,
            perf.cpi()
        );
        native_cpis.push(perf.cpi());
    }
    let native_cpi = native_cpis.iter().sum::<f64>() / native_cpis.len() as f64;

    // Sniper on the whole program (no sampling, no noise) for reference.
    let whole = run_whole_timing(&program, CoreConfig::table3(), configs::i7_table3());
    let whole_cpi = whole.timing.as_ref().expect("timing stats").cpi();

    // Sniper on the simulation points, weighted.
    let regions = run_regions_timing(
        &program,
        &pipeline.regional,
        CoreConfig::table3(),
        configs::i7_table3(),
        WarmupMode::Checkpointed,
    )?;
    let sampled = aggregate_weighted(&regions);
    let sampled_cpi = sampled.cpi.expect("timing stats");

    println!("\n  native CPI (mean of runs): {native_cpi:.4}");
    println!("  Sniper whole-program CPI:  {whole_cpi:.4}");
    println!(
        "  Sniper on {} simulation points: {sampled_cpi:.4}",
        pipeline.regional.len()
    );
    println!(
        "  sampling error vs native:  {:.2}%",
        100.0 * (sampled_cpi - native_cpi).abs() / native_cpi
    );
    if let Some(stack) = sampled.cpi_stack {
        println!("\n  sampled CPI stack: base {:.3}, branch {:.3}, ifetch {:.3}, L2 {:.3}, L3 {:.3}, mem {:.3}",
            stack.base, stack.branch, stack.ifetch, stack.l2, stack.l3, stack.mem);
    }
    Ok(())
}

//! Quickstart: find simulation points for one benchmark and check how well
//! they represent the whole run.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sampsim::cache::configs;
use sampsim::core::metrics::{aggregate_weighted, whole_as_aggregate};
use sampsim::core::runs::{run_regions_functional, run_whole_functional, WarmupMode};
use sampsim::core::{PinPointsConfig, Pipeline};
use sampsim::spec2017::{benchmark, BenchmarkId};
use sampsim::util::scale::Scale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the synthetic stand-in for 505.mcf_r at 1/10 scale so the
    //    example finishes in seconds.
    let scale = Scale::new(0.1);
    let spec = benchmark(BenchmarkId::McfR).scaled(scale);
    let program = spec.build();
    println!(
        "{}: {} instructions, {} phases",
        spec.name(),
        program.total_insts(),
        program.phases().len()
    );

    // 2. Run the PinPoints pipeline: one profiling pass, SimPoint
    //    clustering, regional checkpoints.
    let config = PinPointsConfig {
        slice_size: scale.apply(10_000),
        ..PinPointsConfig::default()
    };
    let result = Pipeline::new(config).run(&program)?;
    println!(
        "pipeline: {} slices -> {} simulation points (k = {})",
        result.num_slices,
        result.regional.len(),
        result.simpoints.k
    );
    for pb in result.regional.iter().take(5) {
        println!(
            "  point @ slice {:>5}, weight {:>5.2}%",
            pb.slice_index,
            pb.weight * 100.0
        );
    }
    if result.regional.len() > 5 {
        println!("  ... and {} more", result.regional.len() - 5);
    }

    // 3. Compare the sampled run against the whole run on the instruction
    //    mix and cache miss rates (Table I hierarchy).
    let whole = run_whole_functional(&program, configs::allcache_table1());
    let regions = run_regions_functional(
        &program,
        &result.regional,
        configs::allcache_table1(),
        WarmupMode::None,
    )?;
    let sampled = aggregate_weighted(&regions);
    let reference = whole_as_aggregate(&whole);
    println!("\nmetric                 whole      sampled");
    for (i, label) in ["NO_MEM%", "MEM_R%", "MEM_W%", "MEM_RW%"]
        .iter()
        .enumerate()
    {
        println!(
            "{label:<20} {:>8.2} {:>12.2}",
            reference.mix_pct[i], sampled.mix_pct[i]
        );
    }
    let wmr = reference.miss_rates.expect("whole cache stats");
    let smr = sampled.miss_rates.expect("sampled cache stats");
    println!("{:<20} {:>8.2} {:>12.2}", "L1D miss%", wmr.l1d, smr.l1d);
    println!("{:<20} {:>8.2} {:>12.2}", "L3 miss%", wmr.l3, smr.l3);
    println!(
        "\nsampled {} of {} instructions ({:.0}x reduction)",
        sampled.total_instructions,
        whole.instructions,
        whole.instructions as f64 / sampled.total_instructions as f64
    );
    Ok(())
}

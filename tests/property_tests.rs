//! Property-based tests on the core invariants.
//!
//! Runs on the in-repo harness (`sampsim::util::prop`) — the offline
//! build has no `proptest` — behind the `property-tests` feature so the
//! randomized volume stays out of the default `cargo test` path.
//! `scripts/check.sh` runs it on every gate:
//!
//! ```text
//! cargo test --features property-tests --test property_tests
//! ```

use sampsim::analyze::predicted_instructions;
use sampsim::cache::{CacheStats, HierarchyStats};
use sampsim::core::metrics::{aggregate_weighted, RunMetrics};
use sampsim::core::plan::plan_strategy;
use sampsim::core::PinPointsConfig;
use sampsim::pin::tools::MixCounts;
use sampsim::pinball::{Logger, RegionalPinball};
use sampsim::simpoint::bbv::Bbv;
use sampsim::simpoint::kmeans::kmeans;
use sampsim::simpoint::select::{reduce_to_percentile, SimPoint};
use sampsim::simpoint::StrategySpec;
use sampsim::util::codec;
use sampsim::util::prop::{run_cases, Gen};
use sampsim::workload::spec::{InterleaveSpec, Mix, PhaseSpec, StreamGen, WorkloadSpec};
use sampsim::workload::{Cursor, Executor, MemClass, Program};

/// Checkpoint/resume at ANY instruction boundary is bit-exact.
#[test]
fn checkpoint_resume_bit_exact() {
    run_cases("checkpoint-resume", 24, |g| {
        let program = program_for(g.u64_in(0..500));
        let split = g.u64_in(1..20_000) % program.total_insts().max(2);
        let mut reference = Executor::new(&program);
        reference.skip(split);
        let cursor = reference.cursor();
        let bytes = codec::to_bytes(&cursor);
        let decoded: Cursor = codec::from_bytes(&bytes).unwrap();
        let mut resumed = Executor::with_cursor(&program, decoded);
        for _ in 0..1_000 {
            assert_eq!(resumed.next_inst(), reference.next_inst());
        }
    });
}

/// Slice-start cursors partition the execution exactly.
#[test]
fn slice_starts_partition_execution() {
    run_cases("slice-starts-partition", 24, |g| {
        let program = program_for(g.u64_in(0..500));
        let slice = g.u64_in(100..5_000);
        let starts = Logger::new(&program).slice_starts(slice);
        let expected = program.total_insts().div_ceil(slice);
        assert_eq!(starts.len() as u64, expected);
        for (i, c) in starts.iter().enumerate() {
            assert_eq!(c.retired, i as u64 * slice);
        }
    });
}

/// A regional pinball roundtrips through the codec losslessly.
#[test]
fn pinball_codec_roundtrip() {
    run_cases("pinball-roundtrip", 24, |g| {
        let program = program_for(g.u64_in(0..500));
        let starts = Logger::new(&program).slice_starts(1_000);
        let idx = g.usize_in(0..10) % starts.len();
        let pb = RegionalPinball::new(&program, idx as u64, starts[idx].clone(), 1_000, 0.5, 1);
        let bytes = codec::to_bytes(&pb);
        let back: RegionalPinball = codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, pb);
    });
}

/// k-means invariants: assignments in range, inertia non-negative,
/// cluster sizes summing to n.
#[test]
fn kmeans_invariants() {
    run_cases("kmeans-invariants", 24, |g| {
        let seed = g.u64_in(0..200);
        let n = g.usize_in(10..80);
        let k = g.usize_in(1..8);
        let mut rng = sampsim::util::rng::Xoshiro256StarStar::seed_from_u64(seed);
        let dim = 3;
        let data: Vec<f64> = (0..n * dim).map(|_| rng.next_f64() * 10.0).collect();
        let r = kmeans(&data, n, dim, k, 50, seed).unwrap();
        assert!(r.inertia >= 0.0);
        assert_eq!(r.assignments.len(), n);
        assert!(r.assignments.iter().all(|&a| (a as usize) < r.k));
        let sizes = r.cluster_sizes();
        assert_eq!(sizes.iter().sum::<u64>(), n as u64);
    });
}

/// The bounds-pruned k-means kernel is bit-identical to the naive
/// reference — assignments, centroids, inertia, iteration count — across
/// random seeds, shapes and iteration caps, including duplicate-heavy
/// data that forces duplicate centroids and empty-cluster reseeds.
#[test]
fn pruned_kmeans_matches_reference_bitwise() {
    use sampsim::simpoint::kmeans::kmeans_reference;
    run_cases("pruned-kmeans-bitwise", 48, |g| {
        let n = g.usize_in(4..120);
        let dim = g.usize_in(1..12);
        let k = g.usize_in(1..24);
        let max_iter = g.u64_in(0..80) as u32;
        let seed = g.u64_in(0..10_000);
        let mut rng = sampsim::util::rng::Xoshiro256StarStar::seed_from_u64(seed);
        let data: Vec<f64> = if g.chance(0.4) {
            // A handful of distinct points, many exact copies: duplicate
            // centroids (half-distance 0) and, for k above the distinct
            // count, empty-cluster reseeds.
            let distinct = g.usize_in(1..4);
            let protos: Vec<f64> = (0..distinct * dim).map(|_| rng.next_f64() * 10.0).collect();
            (0..n)
                .flat_map(|i| {
                    let p = i % distinct;
                    protos[p * dim..(p + 1) * dim].to_vec()
                })
                .collect()
        } else {
            (0..n * dim).map(|_| rng.next_f64() * 10.0 - 5.0).collect()
        };
        let pruned = kmeans(&data, n, dim, k, max_iter, seed).unwrap();
        let naive = kmeans_reference(&data, n, dim, k, max_iter, seed).unwrap();
        assert_eq!(pruned.k, naive.k, "k");
        assert_eq!(pruned.iterations, naive.iterations, "iterations");
        assert_eq!(pruned.assignments, naive.assignments, "assignments");
        assert_eq!(
            pruned.inertia.to_bits(),
            naive.inertia.to_bits(),
            "inertia {} vs {}",
            pruned.inertia,
            naive.inertia
        );
        assert_eq!(pruned.centroids.len(), naive.centroids.len());
        for (a, b) in pruned.centroids.iter().zip(&naive.centroids) {
            assert_eq!(a.to_bits(), b.to_bits(), "centroid {a} vs {b}");
        }
        assert_eq!(pruned.cluster_sizes(), naive.cluster_sizes());
    });
}

/// The sparse batched projection is bit-identical to projecting a dense
/// per-slice vector through the same matrix, normalized and raw.
#[test]
fn sparse_projection_matches_dense_bitwise() {
    use sampsim::simpoint::project::RandomProjection;
    run_cases("sparse-projection-bitwise", 48, |g| {
        let dim = g.usize_in(1..20);
        let seed = g.u64_in(0..10_000);
        let nbbv = g.usize_in(1..16);
        let bbvs: Vec<Bbv> = (0..nbbv)
            .map(|_| {
                let mut counts = g.vec_of(0..30, |g| {
                    (g.u64_in(0..600) as u32, g.u64_in(1..100) as u32)
                });
                counts.sort_by_key(|&(b, _)| b);
                counts.dedup_by_key(|&mut (b, _)| b);
                Bbv::from_counts(counts)
            })
            .collect();
        let projection = RandomProjection::new(dim, seed);
        let num_blocks = bbvs
            .iter()
            .filter_map(Bbv::max_block)
            .max()
            .map_or(0, |m| m + 1);
        let batch = projection.project_all_normalized(&bbvs);
        assert_eq!(batch.len(), nbbv * dim);
        for (i, bbv) in bbvs.iter().enumerate() {
            let dense = projection.project_dense_reference(&bbv.normalized(), num_blocks);
            for (a, b) in batch[i * dim..(i + 1) * dim].iter().zip(&dense) {
                assert_eq!(a.to_bits(), b.to_bits(), "normalized {a} vs {b}");
            }
            let sparse_raw = projection.project(bbv);
            let dense_raw = projection.project_dense_reference(bbv, num_blocks);
            for (a, b) in sparse_raw.iter().zip(&dense_raw) {
                assert_eq!(a.to_bits(), b.to_bits(), "raw {a} vs {b}");
            }
        }
    });
}

/// Percentile reduction keeps weights normalized, returns a subset, is
/// monotone in the percentile, and the kept points' *original* weight
/// never exceeds the original total (it covers at least the requested
/// percentile of it and at most all of it).
#[test]
fn reduction_invariants() {
    run_cases("reduction-invariants", 32, |g| {
        let weights = g.vec_of(1..30, |g| g.f64_in(0.01..1.0));
        let total: f64 = weights.iter().sum();
        let points: Vec<SimPoint> = weights
            .iter()
            .enumerate()
            .map(|(i, w)| SimPoint {
                slice: i as u64,
                cluster: i as u32,
                weight: w / total,
            })
            .collect();
        let p50 = reduce_to_percentile(&points, 0.5);
        let p90 = reduce_to_percentile(&points, 0.9);
        let p100 = reduce_to_percentile(&points, 1.0);
        assert!(p50.len() <= p90.len());
        assert!(p90.len() <= p100.len());
        assert_eq!(p100.len(), points.len());
        for (percentile, reduced) in [(0.5, &p50), (0.9, &p90), (1.0, &p100)] {
            let w: f64 = reduced.iter().map(|p| p.weight).sum();
            assert!((w - 1.0).abs() < 1e-9, "renormalized sum {w}");
            // The reduced set's ORIGINAL mass never exceeds the original
            // total, and covers at least the requested percentile of it.
            let original: f64 = reduced
                .iter()
                .map(|p| {
                    points
                        .iter()
                        .find(|q| q.slice == p.slice)
                        .expect("reduced point must be an original point")
                        .weight
                })
                .sum();
            assert!(original <= 1.0 + 1e-9, "kept mass {original} grew");
            assert!(
                original >= percentile - 1e-9,
                "kept mass {original} misses the {percentile} target"
            );
        }
    });
}

/// Normalized BBVs have unit L1 norm and distances bounded by 2.
#[test]
fn bbv_norm_bounds() {
    run_cases("bbv-norm-bounds", 32, |g| {
        let counts = g.vec_of(1..40, |g| {
            (g.u64_in(0..500) as u32, g.u64_in(1..1_000) as u32)
        });
        let mut sorted = counts;
        sorted.sort_by_key(|&(b, _)| b);
        sorted.dedup_by_key(|&mut (b, _)| b);
        let a = Bbv::from_counts(sorted).normalized();
        assert!((a.l1_norm() - 1.0).abs() < 1e-9);
        let b = Bbv::from_counts(vec![(1000, 1)]).normalized();
        let d = a.manhattan(&b);
        assert!((0.0..=2.0 + 1e-9).contains(&d));
    });
}

/// An arbitrary region for the aggregation properties: a plausible mix,
/// consistent cache counters, positive instruction count.
fn arb_region(g: &mut Gen) -> RunMetrics {
    let insts = g.u64_in(50..5_000);
    let mut mix = MixCounts::new();
    let classes = [
        MemClass::NoMem,
        MemClass::Read,
        MemClass::Write,
        MemClass::ReadWrite,
    ];
    // Bucket the instruction count over the four classes.
    let mut left = insts;
    for class in &classes[..3] {
        let take = g.u64_in(0..left.max(2) / 2 + 1);
        for _ in 0..take {
            mix.record(*class);
        }
        left -= take;
    }
    for _ in 0..left {
        mix.record(MemClass::ReadWrite);
    }
    let level = |g: &mut Gen, upstream_misses: u64| -> CacheStats {
        let accesses = upstream_misses;
        let misses = if accesses == 0 {
            0
        } else {
            g.u64_in(0..accesses + 1)
        };
        CacheStats {
            accesses,
            misses,
            writebacks: 0,
        }
    };
    let l1_accesses = g.u64_in(1..insts + 1);
    let l1d = level(g, l1_accesses);
    let l2 = level(g, l1d.misses);
    let l3 = level(g, l2.misses);
    RunMetrics {
        instructions: insts,
        mix,
        cache: Some(HierarchyStats {
            l1i: level(g, insts),
            l1d,
            l2,
            l3,
            ..HierarchyStats::default()
        }),
        timing: None,
        wall_seconds: g.f64_in(0.0..1.0),
    }
}

/// Normalized weights for `n` regions (sum exactly ~1).
fn arb_weights(g: &mut Gen, n: usize) -> Vec<f64> {
    let raw: Vec<f64> = (0..n).map(|_| g.f64_in(0.05..1.0)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

/// `aggregate_weighted` is invariant (to rounding) under permutation of
/// its regions: the aggregate is a weighted sum, so region order must
/// not matter beyond float associativity noise.
#[test]
fn aggregation_permutation_invariant() {
    run_cases("aggregation-permutation", 32, |g| {
        let n = g.usize_in(2..12);
        let regions: Vec<RunMetrics> = (0..n).map(|_| arb_region(g)).collect();
        let weights = arb_weights(g, n);
        let paired: Vec<(RunMetrics, f64)> = regions.into_iter().zip(weights).collect();
        let forward = aggregate_weighted(&paired);
        // A deterministic permutation drawn from the case generator.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            order.swap(i, g.usize_in(0..i + 1));
        }
        let permuted: Vec<(RunMetrics, f64)> = order.iter().map(|&i| paired[i].clone()).collect();
        let shuffled = aggregate_weighted(&permuted);
        for (a, b) in forward.mix_pct.iter().zip(&shuffled.mix_pct) {
            assert!((a - b).abs() < 1e-9, "mix {a} vs {b}");
        }
        let (fm, sm) = (forward.miss_rates.unwrap(), shuffled.miss_rates.unwrap());
        for (a, b) in [fm.l1i, fm.l1d, fm.l2, fm.l3]
            .iter()
            .zip(&[sm.l1i, sm.l1d, sm.l2, sm.l3])
        {
            assert!((a - b).abs() < 1e-9, "miss rate {a} vs {b}");
        }
        assert_eq!(forward.total_instructions, shuffled.total_instructions);
        assert_eq!(forward.total_l3_accesses, shuffled.total_l3_accesses);
    });
}

/// Aggregate outputs stay inside their physical bounds whenever the
/// weights sum to ~1: mix percentages sum to 100, miss rates to [0, 100].
#[test]
fn aggregation_bounds() {
    run_cases("aggregation-bounds", 32, |g| {
        let n = g.usize_in(1..12);
        let regions: Vec<(RunMetrics, f64)> = {
            let weights = arb_weights(g, n);
            (0..n).map(|_| arb_region(g)).zip(weights).collect()
        };
        let wsum: f64 = regions.iter().map(|(_, w)| w).sum();
        assert!((wsum - 1.0).abs() < 1e-6, "generator must normalize");
        let agg = aggregate_weighted(&regions);
        let mix_total: f64 = agg.mix_pct.iter().sum();
        assert!((mix_total - 100.0).abs() < 1e-6, "mix sums to {mix_total}");
        assert!(agg
            .mix_pct
            .iter()
            .all(|&p| (0.0..=100.0 + 1e-9).contains(&p)));
        let mr = agg.miss_rates.unwrap();
        for rate in [mr.l1i, mr.l1d, mr.l2, mr.l3] {
            assert!(
                (0.0..=100.0 + 1e-9).contains(&rate),
                "miss rate {rate} out of range"
            );
        }
        assert_eq!(
            agg.total_instructions,
            regions.iter().map(|(m, _)| m.instructions).sum::<u64>()
        );
    });
}

/// The pipeline's own regional weights sum to ~1 for arbitrary programs
/// (the precondition `aggregate_weighted` asserts).
#[test]
fn pipeline_weights_sum_to_one() {
    use sampsim::core::{PinPointsConfig, Pipeline};
    use sampsim::simpoint::SimPointOptions;
    run_cases("pipeline-weights", 6, |g| {
        let program = program_for(g.u64_in(0..500));
        let result = Pipeline::new(PinPointsConfig {
            slice_size: 1_000,
            simpoint: SimPointOptions {
                max_k: 6,
                ..Default::default()
            },
            warmup_slices: 2,
            profile_cache: None,
            ..Default::default()
        })
        .run(&program)
        .unwrap();
        let total: f64 = result.regional.iter().map(|pb| pb.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
    });
}

/// The hardened JSON parser survives untrusted input: random documents
/// round-trip (including astral code points forced through `\u` surrogate
/// pairs), nesting beyond `MAX_DEPTH` is rejected without a stack
/// overflow, and trailing garbage after the top-level value is an error.
#[test]
fn json_parser_untrusted_input_hardening() {
    use sampsim::util::json::{self, Value, MAX_DEPTH};

    fn render(value: &Value, out: &mut String) {
        match value {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&format!("{n:?}")),
            Value::String(s) => {
                out.push('"');
                for c in s.chars() {
                    // Force every char through \u escapes so the parser's
                    // surrogate-pair path is exercised for astral planes.
                    let mut buf = [0u16; 2];
                    for unit in c.encode_utf16(&mut buf) {
                        out.push_str(&format!("\\u{unit:04x}"));
                    }
                }
                out.push('"');
            }
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render(item, out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render(&Value::String(k.clone()), out);
                    out.push(':');
                    render(v, out);
                }
                out.push('}');
            }
        }
    }

    fn arb_value(g: &mut Gen, depth: usize) -> Value {
        let pick = if depth >= 3 {
            g.u64_in(0..4)
        } else {
            g.u64_in(0..6)
        };
        match pick {
            0 => Value::Null,
            1 => Value::Bool(g.u64_in(0..2) == 0),
            2 => Value::Number((g.u64_in(0..2_000_000) as f64 - 1e6) / 128.0),
            3 => {
                let len = g.u64_in(0..8) as usize;
                let s: String = (0..len)
                    .map(|_| {
                        // Mix ASCII, BMP and astral-plane code points.
                        match g.u64_in(0..3) {
                            0 => char::from(b'a' + (g.u64_in(0..26) as u8)),
                            1 => char::from_u32(0x0100 + g.u64_in(0..0x500) as u32).unwrap(),
                            _ => char::from_u32(0x1F300 + g.u64_in(0..0x100) as u32).unwrap(),
                        }
                    })
                    .collect();
                Value::String(s)
            }
            4 => Value::Array(
                (0..g.u64_in(0..4))
                    .map(|_| arb_value(g, depth + 1))
                    .collect(),
            ),
            _ => Value::Object(
                (0..g.u64_in(0..4))
                    .map(|i| (format!("k{i}"), arb_value(g, depth + 1)))
                    .collect(),
            ),
        }
    }

    run_cases("json-hardening", 64, |g| {
        // Round-trip: render → parse reproduces the value exactly.
        let value = arb_value(g, 0);
        let mut text = String::new();
        render(&value, &mut text);
        assert_eq!(json::parse(&text).unwrap(), value, "input: {text}");

        // Trailing garbage after the top-level value is always an error.
        let garbage = ["x", "1", "{}", "]", ",", "\"t\""][g.u64_in(0..6) as usize];
        assert!(
            json::parse(&format!("{text} {garbage}")).is_err(),
            "trailing {garbage:?} accepted after {text}"
        );

        // Nesting: depth ≤ MAX_DEPTH parses, depth > MAX_DEPTH is a
        // typed error, never a stack overflow.
        let depth = g.u64_in(1..MAX_DEPTH as u64 + 65) as usize;
        let bomb = format!("{}0{}", "[".repeat(depth), "]".repeat(depth));
        let parsed = json::parse(&bomb);
        if depth <= MAX_DEPTH {
            assert!(parsed.is_ok(), "depth {depth} rejected");
        } else {
            assert!(parsed.is_err(), "depth {depth} accepted");
        }
    });
}

/// A random sparse BBV set for the strategy properties.
fn arb_bbvs(g: &mut Gen, n: usize) -> Vec<Bbv> {
    (0..n)
        .map(|_| {
            let mut counts = g.vec_of(1..20, |g| {
                (g.u64_in(0..200) as u32, g.u64_in(1..100) as u32)
            });
            counts.sort_by_key(|&(b, _)| b);
            counts.dedup_by_key(|&mut (b, _)| b);
            Bbv::from_counts(counts)
        })
        .collect()
}

/// Every registered strategy returns a valid discrete distribution over
/// in-bounds slices: weights non-negative and summing to ~1, region
/// indices inside the slice range and duplicate-free — and the same holds
/// for every replicate set the strategy carries.
#[test]
fn strategy_selections_are_valid_distributions() {
    use sampsim::simpoint::{SimPointOptions, StrategySpec};
    run_cases("strategy-distributions", 24, |g| {
        let n = g.usize_in(2..60);
        let bbvs = arb_bbvs(g, n);
        let input = sampsim::simpoint::StrategyInput {
            bbvs: &bbvs,
            slice_size: 1_000,
        };
        let options = SimPointOptions {
            max_k: 6,
            seed: g.u64_in(0..1_000),
            ..Default::default()
        };
        for spec in StrategySpec::registry() {
            let strategy = spec.build(&options);
            let selection = strategy.select(&input, sampsim::exec::SERIAL).unwrap();
            let mut sets: Vec<&[sampsim::simpoint::select::SimPoint]> = vec![&selection.points];
            sets.extend(selection.replicates.iter().map(Vec::as_slice));
            for points in sets {
                assert!(!points.is_empty(), "{}: empty selection", spec.name());
                let mut seen = std::collections::HashSet::new();
                let mut sum = 0.0;
                for p in points {
                    assert!(
                        (p.slice as usize) < n,
                        "{}: slice {} out of {n}",
                        spec.name(),
                        p.slice
                    );
                    assert!(
                        seen.insert(p.slice),
                        "{}: duplicate {}",
                        spec.name(),
                        p.slice
                    );
                    assert!(p.weight >= 0.0, "{}: weight {}", spec.name(), p.weight);
                    sum += p.weight;
                }
                assert!((sum - 1.0).abs() < 1e-9, "{}: sum {sum}", spec.name());
            }
        }
    });
}

/// The stratified allocation depends only on the score *multiset*, not on
/// slice order: permuting the BBV list leaves the per-stratum sample
/// allocation unchanged.
#[test]
fn stratified2p_allocation_permutation_invariant() {
    use sampsim::simpoint::{StrategyInput, Stratified2p, Stratified2pOptions};
    run_cases("s2p-allocation-permutation", 24, |g| {
        let n = g.usize_in(4..80);
        let bbvs = arb_bbvs(g, n);
        let strategy = Stratified2p::new(Stratified2pOptions {
            seed: g.u64_in(0..10_000),
            ..Default::default()
        });
        let forward = strategy
            .allocation(&StrategyInput {
                bbvs: &bbvs,
                slice_size: 1_000,
            })
            .unwrap();
        // A deterministic shuffle drawn from the case generator.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            order.swap(i, g.usize_in(0..i + 1));
        }
        let shuffled: Vec<Bbv> = order.iter().map(|&i| bbvs[i].clone()).collect();
        let permuted = strategy
            .allocation(&StrategyInput {
                bbvs: &shuffled,
                slice_size: 1_000,
            })
            .unwrap();
        assert_eq!(forward, permuted, "allocation moved under permutation");
    });
}

/// Repeated subsampling works: the standard error of the per-replicate
/// estimate (the replicate's weighted mean of the rank statistic) shrinks
/// as the replicate count grows — monotonically in expectation, so the
/// assertion averages over 20 independent BBV sets.
#[test]
fn rss_error_bars_shrink_with_replicates() {
    use sampsim::simpoint::strategy::bbv_norm_score;
    use sampsim::simpoint::{Rss, RssOptions, SamplingStrategy, StrategyInput};
    use sampsim::util::rng::Xoshiro256StarStar;
    use sampsim::util::stats::Summary;

    let grid = [4usize, 16, 64];
    let mut avg_stderr = [0.0f64; 3];
    for seed in 0..20u64 {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
        let bbvs: Vec<Bbv> = (0..80)
            .map(|_| {
                let len = 5 + rng.next_below(15) as usize;
                let mut counts: Vec<(u32, u32)> = (0..len)
                    .map(|_| (rng.next_below(300) as u32, 1 + rng.next_below(50) as u32))
                    .collect();
                counts.sort_by_key(|&(b, _)| b);
                counts.dedup_by_key(|&mut (b, _)| b);
                Bbv::from_counts(counts)
            })
            .collect();
        let scores: Vec<f64> = bbvs.iter().map(bbv_norm_score).collect();
        let input = StrategyInput {
            bbvs: &bbvs,
            slice_size: 1_000,
        };
        for (i, &reps) in grid.iter().enumerate() {
            let selection = Rss::new(RssOptions {
                replicates: reps,
                seed: 0x00C0_FFEE ^ seed,
                ..Default::default()
            })
            .select(&input, sampsim::exec::SERIAL)
            .unwrap();
            assert_eq!(selection.replicates.len(), reps);
            let mut estimates = Summary::new();
            for replicate in &selection.replicates {
                // Weights sum to 1, so this is the replicate's estimate of
                // the mean rank statistic.
                let mean: f64 = replicate
                    .iter()
                    .map(|p| p.weight * scores[p.slice as usize])
                    .sum();
                estimates.add(mean);
            }
            avg_stderr[i] += estimates.stddev() / (reps as f64).sqrt();
        }
    }
    assert!(
        avg_stderr[0] > avg_stderr[1] && avg_stderr[1] > avg_stderr[2],
        "stderr must shrink with replicates: {avg_stderr:?}"
    );
}

/// Deterministic mini-program family indexed by seed.
fn program_for(seed: u64) -> Program {
    WorkloadSpec::builder("prop", seed)
        .total_insts(20_000 + (seed % 7) * 1_000)
        .phase(PhaseSpec::balanced(1.0))
        .phase(PhaseSpec {
            weight: 0.5,
            mix: Mix::new(0.3, 0.1, 0.01),
            n_blocks: 4 + (seed % 3) as usize,
            block_len: (3, 8),
            streams: vec![StreamGen::random(32 << 10), StreamGen::chase(64 << 10)],
            branch_entropy: 0.2,
            block_skew: 0.5,
        })
        .interleave(InterleaveSpec {
            mean_segment: 4_000,
            jitter: 0.5,
            align: 0,
        })
        .build()
        .build()
}

// ---------------------------------------------------------------- plans

/// Raising a strategy's sample budget must never *widen* a plan's CI
/// half-width bounds (more samples ⇒ at least as much precision), and
/// the predicted replay cost must grow at least as fast as the region
/// mass it buys. Swept per strategy family: `rss` by set size,
/// `stratified2p` by sample budget, `simpoint` by MaxK — and `rss` by
/// replicate count, where the bound is per-replicate and must stay
/// constant (trivially non-increasing).
#[test]
fn plan_ci_bounds_monotone_in_sample_budget() {
    run_cases("plan-ci-monotone", 12, |g| {
        let program = program_for(g.u64_in(0..500));
        let config = PinPointsConfig {
            slice_size: 100 + 50 * g.u64_in(0..5),
            warmup_slices: g.u64_in(0..8),
            ..Default::default()
        };
        let budgets = [2usize, 4, 8, 16, 32, 64];
        let sweep =
            |config: &PinPointsConfig, specs: &[String]| -> Vec<sampsim::core::PlanReport> {
                specs
                    .iter()
                    .map(|s| {
                        let spec = StrategySpec::parse_spec(s).expect("generated specs parse");
                        plan_strategy(&program, config, Some(&spec)).expect("plans render")
                    })
                    .collect()
            };
        let mut sweeps: Vec<Vec<sampsim::core::PlanReport>> = vec![
            sweep(&config, &budgets.map(|b| format!("rss:set_size={b}"))),
            sweep(
                &config,
                &budgets.map(|b| format!("stratified2p:samples={b}")),
            ),
            sweep(
                &config,
                &budgets.map(|b| format!("rss:set_size=8,replicates={b}")),
            ),
        ];
        // simpoint has no spec parameters; its budget is MaxK.
        sweeps.push(
            budgets
                .iter()
                .map(|&k| {
                    let mut c = config.clone();
                    c.simpoint.max_k = k;
                    plan_strategy(&program, &c, None).expect("plans render")
                })
                .collect(),
        );
        for plans in &sweeps {
            for pair in plans.windows(2) {
                for ((metric, lo), (_, hi)) in pair[1]
                    .ci_bound_pct
                    .named()
                    .iter()
                    .zip(pair[0].ci_bound_pct.named())
                {
                    assert!(
                        *lo <= hi,
                        "{}: {metric} bound widened from {hi} to {lo} as the budget grew",
                        pair[1].strategy
                    );
                }
                assert!(
                    pair[1].regions < pair[0].regions
                        || pair[1].predicted_instructions >= pair[0].predicted_instructions,
                    "{}: cost shrank while the region count did not",
                    pair[1].strategy
                );
            }
            for plan in plans {
                // The report's cost is the shared static model, exactly.
                assert_eq!(
                    plan.predicted_instructions,
                    predicted_instructions(
                        plan.regions,
                        plan.slice_size,
                        config.warmup_slices,
                        plan.slices
                    )
                );
            }
        }
    });
}

/// The shared cost model `predicted_instructions` is monotone in every
/// argument and matches its closed form (regions × slice ×
/// (1 + clamped warmup)) wherever the product does not saturate.
#[test]
fn predicted_cost_scales_with_region_mass() {
    run_cases("plan-cost-monotone", 48, |g| {
        let regions = g.usize_in(0..200);
        let slice = g.u64_in(1..10_000);
        let warmup = g.u64_in(0..100);
        let n = g.u64_in(1..1_000);
        let base = predicted_instructions(regions, slice, warmup, n);
        assert!(predicted_instructions(regions + 1, slice, warmup, n) >= base);
        assert!(predicted_instructions(regions, slice + 1, warmup, n) >= base);
        assert!(predicted_instructions(regions, slice, warmup + 1, n) >= base);
        assert!(predicted_instructions(regions, slice, warmup, n + 1) >= base);
        assert_eq!(base, regions as u64 * slice * (1 + warmup.min(n - 1)));
    });
}

/// A plan is a pure function of (program, config): rendering the same
/// strategy with its spec parameters written in any key order produces
/// byte-identical JSON. (Job-count independence is structural — the
/// planner takes no job parameter at all — and the CLI integration suite
/// pins the `--jobs` bytes.)
#[test]
fn plan_reports_byte_identical_across_spec_permutations() {
    run_cases("plan-bytes-stable", 12, |g| {
        let program = program_for(g.u64_in(0..500));
        let config = PinPointsConfig {
            slice_size: 100 + 50 * g.u64_in(0..5),
            ..Default::default()
        };
        let set_size = g.usize_in(2..20);
        let reps = g.usize_in(2..6);
        let seed = g.u64_in(0..1_000);
        let strata = g.usize_in(1..10);
        let samples = g.usize_in(2..60);
        let render = |spec: &str| {
            let spec = StrategySpec::parse_spec(spec).expect("generated specs parse");
            plan_strategy(&program, &config, Some(&spec))
                .expect("plans render")
                .to_json()
        };
        assert_eq!(
            render(&format!(
                "rss:set_size={set_size},replicates={reps},seed={seed}"
            )),
            render(&format!(
                "rss:seed={seed},replicates={reps},set_size={set_size}"
            )),
        );
        assert_eq!(
            render(&format!(
                "stratified2p:strata={strata},samples={samples},seed={seed}"
            )),
            render(&format!(
                "stratified2p:seed={seed},samples={samples},strata={strata}"
            )),
        );
    });
}

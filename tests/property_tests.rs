//! Property-based tests on the core invariants (proptest).

use proptest::prelude::*;
use sampsim::pinball::{Logger, RegionalPinball};
use sampsim::simpoint::bbv::Bbv;
use sampsim::simpoint::kmeans::kmeans;
use sampsim::simpoint::select::{reduce_to_percentile, SimPoint};
use sampsim::util::codec;
use sampsim::workload::spec::{InterleaveSpec, Mix, PhaseSpec, StreamGen, WorkloadSpec};
use sampsim::workload::{Cursor, Executor, Program};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Checkpoint/resume at ANY instruction boundary is bit-exact.
    #[test]
    fn checkpoint_resume_bit_exact(seed in 0u64..500, split in 1u64..20_000) {
        let program = program_for(seed);
        let split = split % program.total_insts().max(2);
        let mut reference = Executor::new(&program);
        reference.skip(split);
        let cursor = reference.cursor();
        let bytes = codec::to_bytes(&cursor);
        let decoded: Cursor = codec::from_bytes(&bytes).unwrap();
        let mut resumed = Executor::with_cursor(&program, decoded);
        for _ in 0..1_000 {
            prop_assert_eq!(resumed.next_inst(), reference.next_inst());
        }
    }

    /// Slice-start cursors partition the execution exactly.
    #[test]
    fn slice_starts_partition_execution(seed in 0u64..500, slice in 100u64..5_000) {
        let program = program_for(seed);
        let starts = Logger::new(&program).slice_starts(slice);
        let expected = program.total_insts().div_ceil(slice);
        prop_assert_eq!(starts.len() as u64, expected);
        for (i, c) in starts.iter().enumerate() {
            prop_assert_eq!(c.retired, i as u64 * slice);
        }
    }

    /// A regional pinball roundtrips through the codec losslessly.
    #[test]
    fn pinball_codec_roundtrip(seed in 0u64..500, idx in 0usize..10) {
        let program = program_for(seed);
        let starts = Logger::new(&program).slice_starts(1_000);
        let idx = idx % starts.len();
        let pb = RegionalPinball::new(&program, idx as u64, starts[idx].clone(), 1_000, 0.5, 1);
        let bytes = codec::to_bytes(&pb);
        let back: RegionalPinball = codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, pb);
    }

    /// k-means invariants: assignments in range, inertia non-negative and
    /// non-increasing in k (with best-of restarts).
    #[test]
    fn kmeans_invariants(seed in 0u64..200, n in 10usize..80, k in 1usize..8) {
        let mut rng = sampsim::util::rng::Xoshiro256StarStar::seed_from_u64(seed);
        let dim = 3;
        let data: Vec<f64> = (0..n * dim).map(|_| rng.next_f64() * 10.0).collect();
        let r = kmeans(&data, n, dim, k, 50, seed).unwrap();
        prop_assert!(r.inertia >= 0.0);
        prop_assert_eq!(r.assignments.len(), n);
        prop_assert!(r.assignments.iter().all(|&a| (a as usize) < r.k));
        let sizes = r.cluster_sizes();
        prop_assert_eq!(sizes.iter().sum::<u64>(), n as u64);
    }

    /// Percentile reduction keeps weights normalized, returns a subset, and
    /// is monotone in the percentile.
    #[test]
    fn reduction_invariants(weights in proptest::collection::vec(0.01f64..1.0, 1..30)) {
        let total: f64 = weights.iter().sum();
        let points: Vec<SimPoint> = weights
            .iter()
            .enumerate()
            .map(|(i, w)| SimPoint { slice: i as u64, cluster: i as u32, weight: w / total })
            .collect();
        let p50 = reduce_to_percentile(&points, 0.5);
        let p90 = reduce_to_percentile(&points, 0.9);
        let p100 = reduce_to_percentile(&points, 1.0);
        prop_assert!(p50.len() <= p90.len());
        prop_assert!(p90.len() <= p100.len());
        prop_assert_eq!(p100.len(), points.len());
        for reduced in [&p50, &p90, &p100] {
            let w: f64 = reduced.iter().map(|p| p.weight).sum();
            prop_assert!((w - 1.0).abs() < 1e-9);
            // Every reduced point is one of the originals.
            for p in reduced.iter() {
                prop_assert!(points.iter().any(|q| q.slice == p.slice));
            }
        }
    }

    /// Normalized BBVs have unit L1 norm and distances bounded by 2.
    #[test]
    fn bbv_norm_bounds(counts in proptest::collection::vec((0u32..500, 1u32..1000), 1..40)) {
        let mut sorted: Vec<(u32, u32)> = counts;
        sorted.sort_by_key(|&(b, _)| b);
        sorted.dedup_by_key(|&mut (b, _)| b);
        let a = Bbv::from_counts(sorted).normalized();
        prop_assert!((a.l1_norm() - 1.0).abs() < 1e-9);
        let b = Bbv::from_counts(vec![(1000, 1)]).normalized();
        let d = a.manhattan(&b);
        prop_assert!((0.0..=2.0 + 1e-9).contains(&d));
    }
}

/// Deterministic mini-program family indexed by seed.
fn program_for(seed: u64) -> Program {
    WorkloadSpec::builder("prop", seed)
        .total_insts(20_000 + (seed % 7) * 1_000)
        .phase(PhaseSpec::balanced(1.0))
        .phase(PhaseSpec {
            weight: 0.5,
            mix: Mix::new(0.3, 0.1, 0.01),
            n_blocks: 4 + (seed % 3) as usize,
            block_len: (3, 8),
            streams: vec![StreamGen::random(32 << 10), StreamGen::chase(64 << 10)],
            branch_entropy: 0.2,
            block_skew: 0.5,
        })
        .interleave(InterleaveSpec {
            mean_segment: 4_000,
            jitter: 0.5,
            align: 0,
        })
        .build()
        .build()
}

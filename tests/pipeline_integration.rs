//! End-to-end integration tests across crates: workload → pin → pinball →
//! simpoint → core, on reduced-scale programs.
//!
//! The expensive artifacts — the pipeline run on the shared program, its
//! whole-run profile and the cold regional replay — are computed once in
//! a [`OnceLock`] fixture and shared by every test, so the file's wall
//! time is one pipeline run rather than one per test.

use std::sync::OnceLock;

use sampsim::cache::configs;
use sampsim::core::metrics::{aggregate_weighted, whole_as_aggregate, RunMetrics};
use sampsim::core::pipeline::PipelineResult;
use sampsim::core::runs::{
    run_region_functional, run_regions_functional, run_whole_functional, WarmupMode,
};
use sampsim::core::{PinPointsConfig, Pipeline};
use sampsim::pin::engine;
use sampsim::pin::tools::TraceRecorder;
use sampsim::simpoint::SimPointOptions;
use sampsim::spec2017::{benchmark, BenchmarkId};
use sampsim::util::scale::Scale;
use sampsim::workload::spec::{InterleaveSpec, PhaseSpec, WorkloadSpec};
use sampsim::workload::{Executor, Program};

fn small_program() -> Program {
    WorkloadSpec::builder("integration", 77)
        .total_insts(200_000)
        .phase(PhaseSpec::balanced(1.5))
        .phase(PhaseSpec::compute_bound(1.0))
        .phase(PhaseSpec::pointer_chasing(0.5))
        .interleave(InterleaveSpec {
            mean_segment: 10_000,
            jitter: 0.4,
            align: 1_000,
        })
        .build()
        .build()
}

fn small_config() -> PinPointsConfig {
    PinPointsConfig {
        slice_size: 1_000,
        simpoint: SimPointOptions {
            max_k: 10,
            ..Default::default()
        },
        warmup_slices: 20,
        profile_cache: None,
        ..Default::default()
    }
}

/// Everything the tests share: one program, one pipeline run, one whole
/// profile and one cold regional replay.
struct Fixture {
    program: Program,
    result: PipelineResult,
    whole: RunMetrics,
    cold: Vec<(RunMetrics, f64)>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let program = small_program();
        let result = Pipeline::new(small_config()).run(&program).unwrap();
        let whole = run_whole_functional(&program, configs::allcache_table1());
        let cold = run_regions_functional(
            &program,
            &result.regional,
            configs::allcache_table1(),
            WarmupMode::None,
        )
        .unwrap();
        Fixture {
            program,
            result,
            whole,
            cold,
        }
    })
}

#[test]
fn regional_replay_equals_direct_execution() {
    // The pinball promise: replaying a regional checkpoint reproduces the
    // original instruction stream bit-for-bit.
    let fx = fixture();
    for pb in fx.result.regional.iter().take(4) {
        // Reference: execute from the start and record the region's slice.
        let mut reference = Executor::new(&fx.program);
        reference.skip(pb.slice_index * 1_000);
        let mut want = TraceRecorder::new(1_000);
        engine::run_one(&mut reference, 1_000, &mut want);
        // Replay from the checkpoint.
        let mut replayed = pb.attach(&fx.program).unwrap();
        let mut got = TraceRecorder::new(1_000);
        engine::run_one(&mut replayed, 1_000, &mut got);
        assert_eq!(got.trace(), want.trace(), "slice {}", pb.slice_index);
    }
}

#[test]
fn sampled_mix_tracks_whole_run() {
    let fx = fixture();
    let sampled = aggregate_weighted(&fx.cold);
    let reference = whole_as_aggregate(&fx.whole);
    for (s, w) in sampled.mix_pct.iter().zip(&reference.mix_pct) {
        assert!(
            (s - w).abs() < 3.0,
            "sampled {s:.2} vs whole {w:.2} (distribution error too large)"
        );
    }
}

#[test]
fn cold_regions_inflate_llc_misses_and_warmup_helps() {
    // The paper's §IV-D finding, end to end.
    let fx = fixture();
    let whole_l3 = fx.whole.cache.as_ref().unwrap().l3.miss_rate_pct();
    let cold_l3 = aggregate_weighted(&fx.cold).miss_rates.unwrap().l3;
    let warm = run_regions_functional(
        &fx.program,
        &fx.result.regional,
        configs::allcache_table1(),
        WarmupMode::Checkpointed,
    )
    .unwrap();
    let warm_l3 = aggregate_weighted(&warm).miss_rates.unwrap().l3;
    assert!(
        cold_l3 >= whole_l3 - 1e-9,
        "cold regions must not under-report L3 misses (cold {cold_l3:.2}, whole {whole_l3:.2})"
    );
    assert!(
        (warm_l3 - whole_l3).abs() <= (cold_l3 - whole_l3).abs() + 1e-9,
        "warmup must not increase the L3 error (cold {cold_l3:.2}, warm {warm_l3:.2}, whole {whole_l3:.2})"
    );
}

#[test]
fn weights_sum_to_one_and_match_cluster_sizes() {
    let fx = fixture();
    let total: f64 = fx.result.regional.iter().map(|pb| pb.weight).sum();
    assert!((total - 1.0).abs() < 1e-9);
    // Each weight equals the cluster population divided by slice count.
    let n = fx.result.simpoints.assignments.len() as f64;
    for pb in &fx.result.regional {
        let members = fx
            .result
            .simpoints
            .assignments
            .iter()
            .filter(|&&a| a == pb.cluster)
            .count() as f64;
        assert!((pb.weight - members / n).abs() < 1e-9);
    }
}

#[test]
fn suite_benchmark_end_to_end_at_test_scale() {
    let scale = Scale::new(0.01);
    let spec = benchmark(BenchmarkId::LeelaS).scaled(scale);
    let program = spec.build();
    // Coarser slices than the paper's 10 k-per-unit-scale: the clustering
    // cost grows with the slice count, and ~1.8 k slices keep this test
    // fast while still exercising every pipeline stage on a real suite
    // workload.
    let mut config = PinPointsConfig {
        slice_size: scale.apply(50_000),
        ..PinPointsConfig::default()
    };
    config.simpoint.max_k = 25;
    let result = Pipeline::new(config).run(&program).unwrap();
    assert!(
        result.regional.len() >= 5,
        "found {}",
        result.regional.len()
    );
    // A single region replays fine and reports its slice length.
    let m = run_region_functional(
        &program,
        &result.regional[0],
        configs::allcache_table1(),
        WarmupMode::Checkpointed,
    )
    .unwrap();
    assert_eq!(m.instructions, result.regional[0].length);
}

#[test]
fn invalid_config_is_rejected_before_profiling() {
    use sampsim::analyze::Rule;
    use sampsim::core::CoreError;

    let program = small_program();
    let mut config = small_config();
    config.slice_size = 0; // would previously panic inside profile()
    config.simpoint.dim = 0;
    let err = Pipeline::new(config).run(&program).unwrap_err();
    match err {
        CoreError::Config(diags) => {
            let codes: Vec<&str> = diags.iter().map(|d| d.rule.code()).collect();
            assert!(codes.contains(&Rule::ZeroSliceSize.code()), "{codes:?}");
            assert!(codes.contains(&Rule::BadProjectionDim.code()), "{codes:?}");
        }
        other => panic!("expected CoreError::Config, got {other}"),
    }
}

#[test]
fn deterministic_across_identical_pipelines() {
    // A fresh pipeline run must reproduce the fixture's run exactly.
    let fx = fixture();
    let b = Pipeline::new(small_config()).run(&fx.program).unwrap();
    assert_eq!(fx.result.simpoints, b.simpoints);
    assert_eq!(fx.result.regional, b.regional);
    assert_eq!(fx.result.whole_metrics.mix, b.whole_metrics.mix);
}

//! Differential harness for the parallel execution layer.
//!
//! The contract under test: for every job count, the parallel profiling
//! pass and the parallel regional replays produce output **bit-identical**
//! to the serial reference — same BBV matrices, same slice checkpoints,
//! same simulation-point selection and weights, same cache miss counts,
//! same aggregated CPI. No tolerances anywhere; floats are compared by
//! their bit patterns. The only field allowed to differ is
//! `wall_seconds`, which measures the host rather than the simulation
//! (`RunMetrics::deterministic_eq` excludes exactly that field).
//!
//! The grid crosses workload seeds and real suite benchmarks with job
//! counts 1, 2, 7 and the machine's available parallelism, so the suite
//! exercises fewer-workers-than-shards, more-workers-than-regions and
//! the dedicated cache-task path regardless of the host's core count.

use sampsim::cache::configs;
use sampsim::core::metrics::{aggregate_weighted, RunMetrics};
use sampsim::core::runs::{run_regions_functional_jobs, run_regions_timing_jobs, WarmupMode};
use sampsim::core::{PinPointsConfig, Pipeline};
use sampsim::exec::Jobs;
use sampsim::simpoint::{
    SamplingStrategy, SimPointAnalysis, SimPointOptions, SimPointStrategy, StrategyInput,
    StrategySpec,
};
use sampsim::spec2017::{benchmark, BenchmarkId};
use sampsim::uarch::CoreConfig;
use sampsim::util::scale::Scale;
use sampsim::workload::spec::{InterleaveSpec, PhaseSpec, WorkloadSpec};
use sampsim::workload::Program;

/// The job counts every comparison is repeated for.
fn job_grid() -> Vec<Jobs> {
    vec![
        Jobs::new(1).unwrap(),
        Jobs::new(2).unwrap(),
        Jobs::new(7).unwrap(),
        Jobs::Auto,
    ]
}

/// Synthetic programs with different phase mixes and interleavings, so
/// shard boundaries land in structurally different places per seed.
fn synthetic(seed: u64) -> Program {
    WorkloadSpec::builder("par-diff", seed)
        .total_insts(120_000 + (seed % 3) * 17_000)
        .phase(PhaseSpec::balanced(1.0))
        .phase(PhaseSpec::memory_bound(0.8))
        .phase(PhaseSpec::compute_bound(0.6))
        .interleave(InterleaveSpec {
            mean_segment: 4_000 + (seed % 5) * 700,
            jitter: 0.35,
            align: 0,
        })
        .build()
        .build()
}

fn config(profile_cache: bool) -> PinPointsConfig {
    PinPointsConfig {
        slice_size: 1_000,
        simpoint: SimPointOptions {
            max_k: 8,
            ..Default::default()
        },
        warmup_slices: 5,
        profile_cache: profile_cache.then(configs::allcache_table1),
        strategy: StrategySpec::SimPoint,
    }
}

fn assert_metrics_identical(a: &RunMetrics, b: &RunMetrics, what: &str) {
    assert!(
        a.deterministic_eq(b),
        "{what}: metrics diverge\n serial: {a:?}\n parallel: {b:?}"
    );
}

fn assert_f64_bits(a: f64, b: f64, what: &str) {
    assert_eq!(
        a.to_bits(),
        b.to_bits(),
        "{what}: {a:?} vs {b:?} differ in bits"
    );
}

/// Profiling pass: BBV matrix, slice checkpoints and whole-run metrics
/// (mix + cache counters) must be bit-identical for every job count.
fn check_profile(program: &Program, profile_cache: bool, label: &str) {
    let pipeline = Pipeline::new(config(profile_cache));
    let (ref_bbvs, ref_starts, ref_metrics) = pipeline.profile(program);
    assert!(!ref_bbvs.is_empty());
    for jobs in job_grid() {
        let (bbvs, starts, metrics) = pipeline.profile_jobs(program, jobs);
        assert_eq!(bbvs, ref_bbvs, "{label}: BBV matrix (jobs = {jobs})");
        assert_eq!(starts, ref_starts, "{label}: slice cursors (jobs = {jobs})");
        assert_metrics_identical(
            &ref_metrics,
            &metrics,
            &format!("{label}: whole-run profile (jobs = {jobs})"),
        );
    }
}

/// Full pipeline: the simulation-point selection (k, assignments, BIC
/// scores, weights) and the regional pinballs must be identical.
fn check_pipeline(program: &Program, profile_cache: bool, label: &str) {
    let pipeline = Pipeline::new(config(profile_cache));
    let reference = pipeline.run(program).unwrap();
    for jobs in job_grid() {
        let result = pipeline.run_jobs(program, jobs).unwrap();
        assert_eq!(
            result.simpoints, reference.simpoints,
            "{label}: simpoint selection (jobs = {jobs})"
        );
        assert_eq!(
            result.regional, reference.regional,
            "{label}: regional pinballs (jobs = {jobs})"
        );
        assert_eq!(result.whole, reference.whole, "{label}: whole pinball");
        assert_eq!(result.num_slices, reference.num_slices);
        assert_metrics_identical(
            &reference.whole_metrics,
            &result.whole_metrics,
            &format!("{label}: pipeline whole metrics (jobs = {jobs})"),
        );
        for (r, s) in result.regional.iter().zip(&reference.regional) {
            assert_f64_bits(
                r.weight,
                s.weight,
                &format!("{label}: weight (jobs = {jobs})"),
            );
        }
    }
}

/// Functional regional replays: per-region cache miss counts and the
/// weighted aggregate must be bit-identical.
fn check_functional_replay(program: &Program, label: &str) {
    let pipeline = Pipeline::new(config(false));
    let result = pipeline.run(program).unwrap();
    for warmup in [WarmupMode::None, WarmupMode::Checkpointed] {
        let reference = run_regions_functional_jobs(
            program,
            &result.regional,
            configs::allcache_table1(),
            warmup,
            sampsim::exec::SERIAL,
        )
        .unwrap();
        for jobs in job_grid() {
            let parallel = run_regions_functional_jobs(
                program,
                &result.regional,
                configs::allcache_table1(),
                warmup,
                jobs,
            )
            .unwrap();
            assert_eq!(parallel.len(), reference.len());
            for (i, ((rm, rw), (pm, pw))) in reference.iter().zip(&parallel).enumerate() {
                let what = format!("{label}: region {i} ({warmup:?}, jobs = {jobs})");
                assert_metrics_identical(rm, pm, &what);
                assert_f64_bits(*rw, *pw, &what);
                assert_eq!(
                    rm.cache.as_ref().unwrap().l3.misses,
                    pm.cache.as_ref().unwrap().l3.misses,
                    "{what}: L3 miss count"
                );
            }
            let ra = aggregate_weighted(&reference);
            let pa = aggregate_weighted(&parallel);
            assert_eq!(ra.total_l3_accesses, pa.total_l3_accesses);
            for (a, b) in ra.mix_pct.iter().zip(&pa.mix_pct) {
                assert_f64_bits(*a, *b, &format!("{label}: aggregate mix (jobs = {jobs})"));
            }
            let (rmr, pmr) = (ra.miss_rates.unwrap(), pa.miss_rates.unwrap());
            for (a, b) in [rmr.l1i, rmr.l1d, rmr.l2, rmr.l3]
                .iter()
                .zip(&[pmr.l1i, pmr.l1d, pmr.l2, pmr.l3])
            {
                assert_f64_bits(*a, *b, &format!("{label}: miss rates (jobs = {jobs})"));
            }
        }
    }
}

/// Timing replays: the weighted CPI — a float reduction, the most
/// order-sensitive output in the system — must be bit-identical.
fn check_timing_replay(program: &Program, label: &str) {
    let pipeline = Pipeline::new(config(false));
    let result = pipeline.run(program).unwrap();
    let reference = run_regions_timing_jobs(
        program,
        &result.regional,
        CoreConfig::table3(),
        configs::i7_table3(),
        WarmupMode::Checkpointed,
        sampsim::exec::SERIAL,
    )
    .unwrap();
    let ref_cpi = aggregate_weighted(&reference).cpi.unwrap();
    for jobs in job_grid() {
        let parallel = run_regions_timing_jobs(
            program,
            &result.regional,
            CoreConfig::table3(),
            configs::i7_table3(),
            WarmupMode::Checkpointed,
            jobs,
        )
        .unwrap();
        for (i, ((rm, _), (pm, _))) in reference.iter().zip(&parallel).enumerate() {
            assert_metrics_identical(
                rm,
                pm,
                &format!("{label}: timing region {i} (jobs = {jobs})"),
            );
        }
        let cpi = aggregate_weighted(&parallel).cpi.unwrap();
        assert_f64_bits(
            ref_cpi,
            cpi,
            &format!("{label}: aggregated CPI (jobs = {jobs})"),
        );
    }
}

#[test]
fn profile_is_bit_identical_across_job_counts() {
    for seed in [11, 12, 13] {
        let program = synthetic(seed);
        check_profile(&program, false, &format!("seed {seed}"));
    }
}

#[test]
fn profile_with_cache_task_is_bit_identical() {
    // profile_cache = Some exercises the dedicated whole-run cache task
    // overlapped with the BBV shards.
    for seed in [11, 14] {
        let program = synthetic(seed);
        check_profile(&program, true, &format!("seed {seed} (cache)"));
    }
}

#[test]
fn pipeline_results_are_bit_identical_across_job_counts() {
    let program = synthetic(21);
    check_pipeline(&program, true, "seed 21");
}

#[test]
fn functional_replays_are_bit_identical_across_job_counts() {
    let program = synthetic(31);
    check_functional_replay(&program, "seed 31");
}

#[test]
fn timing_replays_and_cpi_are_bit_identical_across_job_counts() {
    let program = synthetic(41);
    check_timing_replay(&program, "seed 41");
}

#[test]
fn suite_benchmarks_are_bit_identical_across_job_counts() {
    // Real suite workloads at a reduced scale: phase interleavings and
    // slice counts the synthetic seeds do not produce (including a
    // non-multiple-of-slice tail).
    for id in [BenchmarkId::McfR, BenchmarkId::XzR] {
        let program = benchmark(id).scaled(Scale::new(0.001)).build();
        check_profile(&program, true, id.name());
        check_pipeline(&program, false, id.name());
    }
}

#[test]
fn kmeans_restarts_are_bit_identical_across_job_counts() {
    // The clustering restarts themselves now fan out over the worker
    // pool: the serial best-of fold and every parallel job count must
    // pick the same winner, bit for bit — including the naive reference
    // kernel, which shares the restart seed schedule.
    use sampsim::simpoint::project::RandomProjection;
    use sampsim::simpoint::{kmeans_best_of, kmeans_best_of_jobs, kmeans_best_of_reference};

    let program = synthetic(77);
    let pipeline = Pipeline::new(config(false));
    let (bbvs, _, _) = pipeline.profile(&program);
    let projection = RandomProjection::new(15, 0x51AB_0DD5);
    let data = projection.project_all_normalized(&bbvs);
    let n = bbvs.len();
    for k in [2, 7] {
        let serial = kmeans_best_of(&data, n, 15, k, 60, 9, 5).unwrap();
        let naive = kmeans_best_of_reference(&data, n, 15, k, 60, 9, 5).unwrap();
        assert_eq!(serial.assignments, naive.assignments, "pruned vs naive");
        assert_f64_bits(serial.inertia, naive.inertia, "pruned vs naive inertia");
        for jobs in job_grid() {
            let par = kmeans_best_of_jobs(&data, n, 15, k, 60, 9, 5, jobs).unwrap();
            let what = format!("restarts k={k} (jobs = {jobs})");
            assert_eq!(par.k, serial.k, "{what}: k");
            assert_eq!(par.iterations, serial.iterations, "{what}: iterations");
            assert_eq!(par.assignments, serial.assignments, "{what}: assignments");
            assert_f64_bits(par.inertia, serial.inertia, &format!("{what}: inertia"));
            assert_eq!(par.centroids.len(), serial.centroids.len());
            for (a, b) in par.centroids.iter().zip(&serial.centroids) {
                assert_f64_bits(*a, *b, &format!("{what}: centroid"));
            }
        }
    }
}

#[test]
fn simpoint_through_trait_is_bit_identical_to_legacy() {
    // The strategy refactor's zero-drift guarantee: SimPoint dispatched
    // through the `SamplingStrategy` trait must reproduce the legacy
    // `SimPointAnalysis` entry point bit for bit — selection, weights,
    // assignments, BIC scores, and the regional pinballs (cursors,
    // warmup records) derived from them — across seeds × benchmarks ×
    // job counts.
    let suite: Vec<(String, Program)> = [31u64, 32, 33]
        .iter()
        .map(|&seed| (format!("seed {seed}"), synthetic(seed)))
        .chain([BenchmarkId::McfR, BenchmarkId::XzR].iter().map(|&id| {
            (
                id.name().to_string(),
                benchmark(id).scaled(Scale::new(0.001)).build(),
            )
        }))
        .collect();
    for (label, program) in &suite {
        let pipeline = Pipeline::new(config(false));
        let (bbvs, starts, _) = pipeline.profile(program);
        let opts = config(false).simpoint;
        for jobs in [Jobs::new(1).unwrap(), Jobs::new(2).unwrap(), Jobs::Auto] {
            let legacy = SimPointAnalysis::new(opts)
                .run_jobs(&bbvs, 1_000, jobs)
                .unwrap();
            let selection = SimPointStrategy::new(opts)
                .select(
                    &StrategyInput {
                        bbvs: &bbvs,
                        slice_size: 1_000,
                    },
                    jobs,
                )
                .unwrap();
            let (via_trait, replicates) = selection.into_parts(1_000);
            assert_eq!(via_trait, legacy, "{label}: selection (jobs = {jobs})");
            assert!(replicates.is_empty(), "{label}: simpoint has no replicates");
            for (a, b) in via_trait.points.iter().zip(&legacy.points) {
                assert_f64_bits(a.weight, b.weight, &format!("{label}: weight bits"));
            }
            for (a, b) in via_trait.bic_scores.iter().zip(&legacy.bic_scores) {
                assert_eq!(a.0, b.0, "{label}: BIC k");
                assert_f64_bits(a.1, b.1, &format!("{label}: BIC score bits"));
            }
            // Downstream checkpoints (cursors + warmup) match too.
            let regional_trait = pipeline.regionals_for(program, &via_trait, &starts);
            let regional_legacy = pipeline.regionals_for(program, &legacy, &starts);
            assert_eq!(
                regional_trait, regional_legacy,
                "{label}: regional pinballs (jobs = {jobs})"
            );
        }
        // The full pipeline (which now always dispatches through the
        // trait) agrees with the legacy analysis run serially.
        let result = pipeline.run(program).unwrap();
        let legacy = SimPointAnalysis::new(opts)
            .run_jobs(&bbvs, 1_000, sampsim::exec::SERIAL)
            .unwrap();
        assert_eq!(result.simpoints, legacy, "{label}: pipeline selection");
        assert!(result.replicates.is_empty());
    }
}

#[test]
fn new_strategies_are_bit_identical_across_job_counts() {
    // stratified2p and rss are jobs-oblivious by construction, but the
    // pipeline around them (sharded profiling, cached stages) is not —
    // the whole run must still be bit-identical for every job count,
    // including the replicate sets rss derives its error bars from.
    for name in ["stratified2p", "rss"] {
        let program = synthetic(51);
        let mut cfg = config(false);
        cfg.strategy = StrategySpec::parse(name).unwrap();
        let pipeline = Pipeline::new(cfg);
        let reference = pipeline.run(&program).unwrap();
        assert!(!reference.regional.is_empty(), "{name}");
        let weight: f64 = reference.regional.iter().map(|pb| pb.weight).sum();
        assert!((weight - 1.0).abs() < 1e-9, "{name}: weights sum {weight}");
        for jobs in job_grid() {
            let result = pipeline.run_jobs(&program, jobs).unwrap();
            assert_eq!(
                result.simpoints, reference.simpoints,
                "{name}: selection (jobs = {jobs})"
            );
            assert_eq!(
                result.regional, reference.regional,
                "{name}: regional pinballs (jobs = {jobs})"
            );
            assert_eq!(
                result.replicates, reference.replicates,
                "{name}: replicate sets (jobs = {jobs})"
            );
            for (r, s) in result.regional.iter().zip(&reference.regional) {
                assert_f64_bits(r.weight, s.weight, &format!("{name}: weight bits"));
            }
        }
    }
}

#[test]
fn single_slice_program_profiles_identically() {
    // Degenerate sharding: the whole program fits in one slice, so every
    // job count must collapse to the serial path.
    let program = WorkloadSpec::builder("one-slice", 5)
        .total_insts(900)
        .phase(PhaseSpec::balanced(1.0))
        .build()
        .build();
    check_profile(&program, true, "single slice");
}

//! Statistical oracle for the sampling strategies.
//!
//! A synthetic two-phase workload with *known* per-slice CPI: the first
//! half of the run is a "memory" phase (CPI ≈ 3.0), the second half a
//! "compute" phase (CPI ≈ 1.0), each with small deterministic per-slice
//! jitter, and each phase executing a disjoint set of basic blocks so the
//! BBVs carry the phase structure. Ground truth is the exact mean over
//! every slice; a strategy's estimate is its weighted sum of the known
//! per-slice values. Because no cache or timing simulation is involved,
//! the oracle isolates pure *selection* error — how well the chosen
//! regions and weights represent the slice population — from warmup and
//! modeling error.
//!
//! Every registered strategy must converge to the truth within the
//! documented tolerance, and a deliberately biased "worst-case" selector
//! (a prefix of slices, i.e. memory-phase-only on this layout) must FAIL
//! the same bar — proving the oracle can actually reject a broken
//! selector.

use sampsim::simpoint::bbv::Bbv;
use sampsim::simpoint::{SimPoint, SimPointOptions, StrategyInput, StrategySpec};
use sampsim::util::rng::Xoshiro256StarStar;
use sampsim::util::stats::relative_error_pct;

/// Documented accuracy bar: each registered strategy's CPI estimate must
/// land within this relative error of the population mean. Calibrated
/// empirically on this workload — the registered strategies land under
/// half of it (SimPoint ≲ 1%, stratified2p and rss a few percent), while
/// the phase-blind prefix selector below misses by an order of magnitude
/// (≈ 50%: it only ever sees the CPI-3 phase of a CPI-2 workload).
const TOLERANCE_PCT: f64 = 8.0;

/// Slices in the synthetic run (two equal phase blocks).
const SLICES: usize = 300;

/// Per-phase base CPI; the slice index determines the phase.
fn phase_of(slice: usize) -> usize {
    usize::from(slice >= SLICES / 2)
}

/// The known per-slice CPI: phase base ± small deterministic jitter.
fn known_cpi() -> Vec<f64> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x00AC_1E5E);
    (0..SLICES)
        .map(|i| {
            let (base, jitter) = if phase_of(i) == 0 {
                (3.0, 0.2)
            } else {
                (1.0, 0.1)
            };
            base + (rng.next_f64() * 2.0 - 1.0) * jitter
        })
        .collect()
}

/// Phase-structured BBVs: each phase touches a disjoint block range, with
/// deterministic per-slice count jitter so slices within a phase are
/// similar but not identical.
fn oracle_bbvs() -> Vec<Bbv> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xB1_0C55);
    (0..SLICES)
        .map(|i| {
            let base_block = (phase_of(i) * 100) as u32;
            let counts: Vec<(u32, u32)> = (0..20)
                .map(|b| (base_block + b, 20 + rng.next_below(30) as u32))
                .collect();
            Bbv::from_counts(counts)
        })
        .collect()
}

/// A selector's estimate of the mean CPI: the weighted sum of the known
/// per-slice values over its selected regions.
fn estimate(points: &[SimPoint], cpi: &[f64]) -> f64 {
    points
        .iter()
        .map(|p| p.weight * cpi[p.slice as usize])
        .sum()
}

fn truth(cpi: &[f64]) -> f64 {
    cpi.iter().sum::<f64>() / cpi.len() as f64
}

/// Every registered strategy estimates the bimodal population mean within
/// the documented tolerance.
#[test]
fn every_registered_strategy_converges_to_truth() {
    let bbvs = oracle_bbvs();
    let cpi = known_cpi();
    let truth = truth(&cpi);
    let input = StrategyInput {
        bbvs: &bbvs,
        slice_size: 1_000,
    };
    let options = SimPointOptions {
        max_k: 8,
        ..Default::default()
    };
    for spec in StrategySpec::registry() {
        let selection = spec
            .build(&options)
            .select(&input, sampsim::exec::SERIAL)
            .unwrap();
        let est = estimate(&selection.points, &cpi);
        let error = relative_error_pct(est, truth);
        assert!(
            error <= TOLERANCE_PCT,
            "{}: estimate {est:.4} vs truth {truth:.4} — {error:.2}% error exceeds \
             the {TOLERANCE_PCT}% oracle tolerance",
            spec.name()
        );
        // Replicate estimates must meet the same bar on average (they
        // are what the compare error bars are built from).
        if !selection.replicates.is_empty() {
            let mean: f64 = selection
                .replicates
                .iter()
                .map(|r| estimate(r, &cpi))
                .sum::<f64>()
                / selection.replicates.len() as f64;
            let error = relative_error_pct(mean, truth);
            assert!(
                error <= TOLERANCE_PCT,
                "{}: replicate-mean estimate {mean:.4} off truth {truth:.4} by {error:.2}%",
                spec.name()
            );
        }
    }
}

/// The teeth of the oracle: a deliberately phase-blind selector — the
/// first 10 slices with equal weights, i.e. memory-phase slices only on
/// this layout — must MISS the tolerance. If this fixture ever passes the
/// bar, the oracle can no longer tell a good selector from a broken one
/// and must be re-calibrated.
#[test]
fn worst_case_biased_selector_fails_the_oracle() {
    let cpi = known_cpi();
    let truth = truth(&cpi);
    let m = 10;
    let prefix: Vec<SimPoint> = (0..m)
        .map(|i| SimPoint {
            slice: i as u64,
            cluster: 0,
            weight: 1.0 / m as f64,
        })
        .collect();
    let est = estimate(&prefix, &cpi);
    let error = relative_error_pct(est, truth);
    assert!(
        error > TOLERANCE_PCT,
        "worst-case prefix selector landed at {error:.2}% error (estimate \
         {est:.4} vs truth {truth:.4}) — inside the {TOLERANCE_PCT}% \
         tolerance, so the oracle has lost its teeth"
    );
}

//! Plan-vs-compare consistency oracle.
//!
//! `sampsim plan` promises, *statically*, that a strategy's observed
//! relative error on every reported metric stays within the plan's
//! conservative CI half-width bound. This oracle holds the static model
//! to that promise dynamically: for every registered strategy on several
//! suite benchmarks, run the real cross-strategy efficacy study
//! (`compare_strategies`) and check each observed error against the
//! corresponding plan via `check_against_compare`.
//!
//! Two directions, as with every oracle in this repo:
//!
//! - **Honest bounds hold.** No registered strategy may escape its
//!   predicted bound on any benchmark (metrics with near-zero truth are
//!   skipped — relative error is undefined there).
//! - **Doctored bounds fail.** The same plans with their bounds
//!   optimistically narrowed by 10^6 must produce violations for every
//!   strategy — proving the checker can actually reject a model that
//!   flatters itself, rather than passing vacuously.

use sampsim::core::compare::{compare_strategies, CompareReport};
use sampsim::core::plan::{check_against_compare, plan_strategy, PlanReport};
use sampsim::core::PinPointsConfig;
use sampsim::exec::SERIAL;
use sampsim::simpoint::{SimPointOptions, StrategySpec, STRATEGY_NAMES};
use sampsim::spec2017::{benchmark, BenchmarkId};
use sampsim::util::scale::Scale;

/// Benchmarks the oracle runs against: distinct suites and memory
/// behaviours, scaled so each run is a few hundred slices.
const BENCHES: &[BenchmarkId] = &[BenchmarkId::McfR, BenchmarkId::OmnetppS, BenchmarkId::XzR];

/// Replicates handed to the efficacy study. The plan's bounds are
/// per-replicate (n_eff = regions), so any value ≥ 1 must stay inside
/// them; 2 keeps the study honest about spread without slowing the test.
const REPLICATES: usize = 2;

fn config() -> PinPointsConfig {
    PinPointsConfig {
        slice_size: 1_000,
        simpoint: SimPointOptions {
            max_k: 6,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Plans for every registered strategy plus the matching efficacy study.
fn plans_and_compare(id: BenchmarkId) -> (Vec<PlanReport>, CompareReport) {
    let program = benchmark(id).scaled(Scale::new(0.002)).build();
    let config = config();
    let plans: Vec<PlanReport> = STRATEGY_NAMES
        .iter()
        .map(|name| {
            let spec = StrategySpec::parse_spec(name).expect("registered names parse");
            plan_strategy(&program, &config, Some(&spec))
                .unwrap_or_else(|e| panic!("planning {name} on {}: {e}", program.name()))
        })
        .collect();
    let compare = compare_strategies(&program, &config, REPLICATES, SERIAL)
        .unwrap_or_else(|e| panic!("comparing on {}: {e}", program.name()));
    (plans, compare)
}

#[test]
fn observed_errors_stay_within_planned_bounds() {
    for &id in BENCHES {
        let (plans, compare) = plans_and_compare(id);
        // The study must actually exercise every strategy the plans
        // cover, or the check would pass by omission.
        for name in STRATEGY_NAMES {
            assert!(
                compare.strategies.iter().any(|r| r.strategy == *name),
                "{}: compare report lacks strategy {name}",
                compare.bench
            );
            assert!(
                plans.iter().any(|p| p.strategy == *name),
                "{}: no plan for strategy {name}",
                compare.bench
            );
        }
        let violations = check_against_compare(&plans, &compare);
        assert!(
            violations.is_empty(),
            "{}: observed errors escaped the static plan bounds: {violations:?}",
            compare.bench
        );
    }
}

#[test]
fn doctored_optimistic_bounds_are_rejected() {
    // One benchmark suffices to prove the checker has teeth; the honest
    // direction above already sweeps all three.
    let (mut plans, compare) = plans_and_compare(BenchmarkId::McfR);
    for plan in &mut plans {
        plan.ci_bound_pct.cpi /= 1e6;
        plan.ci_bound_pct.l1i /= 1e6;
        plan.ci_bound_pct.l1d /= 1e6;
        plan.ci_bound_pct.l2 /= 1e6;
        plan.ci_bound_pct.l3 /= 1e6;
    }
    let violations = check_against_compare(&plans, &compare);
    assert!(
        !violations.is_empty(),
        "{}: a million-fold narrowed bound produced no violations — the \
         oracle cannot reject an over-optimistic model",
        compare.bench
    );
    for name in STRATEGY_NAMES {
        assert!(
            violations.iter().any(|v| v.strategy == *name),
            "{}: doctored bounds produced no violation for {name}: {violations:?}",
            compare.bench
        );
    }
}
